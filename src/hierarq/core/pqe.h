#ifndef HIERARQ_CORE_PQE_H_
#define HIERARQ_CORE_PQE_H_

/// \file pqe.h
/// \brief Probabilistic Query Evaluation (paper §5.4, Theorem 5.8).
///
/// Computes the marginal probability of a hierarchical SJF-BCQ over a
/// tuple-independent probabilistic database in O(|D|), by instantiating
/// Algorithm 1 with the probability 2-monoid — which specializes it to the
/// Dalvi–Suciu algorithm.

#include "hierarq/core/evaluator.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Returns Pr[Q is true on a random possible world of `db`].
/// Fails with kNotHierarchical for non-hierarchical queries.
Result<double> EvaluateProbability(const ConjunctiveQuery& query,
                                   const TidDatabase& db);

/// As above, but amortized through `evaluator`: the query's plan is built
/// at most once per evaluator and relation buffers are reused across calls.
Result<double> EvaluateProbability(Evaluator& evaluator,
                                   const ConjunctiveQuery& query,
                                   const TidDatabase& db);

}  // namespace hierarq

#endif  // HIERARQ_CORE_PQE_H_
