#ifndef HIERARQ_CORE_ALGORITHM1_H_
#define HIERARQ_CORE_ALGORITHM1_H_

/// \file algorithm1.h
/// \brief The paper's Algorithm 1: the general-purpose evaluator for
/// hierarchical SJF-BCQs over any 2-monoid.
///
/// The algorithm replays a compiled `EliminationPlan` (Proposition 5.1)
/// over a K-annotated database:
///   * Rule 1 (private variable Y of atom R(X)):
///       R'(x') = ⊕_{y ∈ Dom} R(x', y)
///     implemented as a hash ⊕-aggregation over the support of R — absent
///     facts annotate to 0, the ⊕ identity, so they contribute nothing;
///   * Rule 2 (atoms R1(X), R2(X) with equal variable sets):
///       R'(x) = R1(x) ⊗ R2(x)
///     implemented over the *union* of supports. This is the one subtle
///     point: a 2-monoid guarantees only 0 ⊗ 0 = 0 (Definition 5.6), not
///     annihilation, so a fact present in R1 but not R2 contributes
///       R1(x) ⊗ 0, which may be non-zero (it is in the #Sat monoid).
///     Only absent-absent pairs may be skipped — exactly the argument of
///     Lemma 6.6, which bounds supp(R') ⊆ supp(R1) ∪ supp(R2).
///
/// Hot-path mechanics: the position of a Rule 1 projection is precomputed
/// in the plan (`EliminationStep::drop_pos`), every result relation is
/// `Reserve`d to its Lemma 6.6 support bound before filling so growth
/// rehashes never fire, and both rules run as storage-layer bulk
/// operations (`AnnotatedRelation::ProjectDropInto` / `JoinUnionInto`) so
/// each backend applies its layout-aware fast path — the columnar backend
/// reads only a projection's surviving columns and builds Rule 2 results
/// with compare-free inserts. Intermediate relations inherit the base
/// relations' storage backend, keeping every step on a native path. The
/// in-place overload runs over a caller-owned relations vector, which
/// lets `Evaluator` (core/evaluator.h) reuse table buffers across runs.
///
/// The returned value is the annotation of the final nullary atom's empty
/// tuple, or Zero() when its support is empty (an empty ⊕). Total work is
/// O(|D|) ⊕/⊗ operations (Theorem 6.7).

#include <utility>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/cancel.h"
#include "hierarq/data/annotated.h"
#include "hierarq/obs/query_stats.h"
#include "hierarq/obs/trace.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Runs Algorithm 1 in place over `relations`, which must have
/// `plan.num_atoms()` entries with the first `plan.num_base_atoms()` filled
/// by annotation (indexed by query atom position). Intermediate slots are
/// Reset as their steps execute; consumed inputs are Cleared (capacity
/// retained for reuse).
template <TwoMonoid M>
typename M::value_type RunAlgorithm1InPlace(
    const EliminationPlan& plan, const M& monoid,
    std::vector<AnnotatedRelation<typename M::value_type>>& relations) {
  using K = typename M::value_type;

  HIERARQ_CHECK_EQ(relations.size(), plan.num_atoms());

  // Intermediates adopt the base relations' backend so every step stays on
  // a storage-native path (scratch slots may carry a stale kind from a
  // previous run under a different engine option).
  const StorageKind storage = relations.front().storage();
  const auto plus = [&monoid](const K& a, const K& b) {
    return monoid.Plus(a, b);
  };
  const auto times = [&monoid](const K& a, const K& b) {
    return monoid.Times(a, b);
  };

  // Hoisted once per run: the untraced hot path pays one null check per
  // step, no clock reads, no event stores. Same deal for the per-query
  // stats collector (obs/query_stats.h).
  obs::Tracer* const tracer = obs::Tracer::Current();
  obs::QueryStats* const query_stats = obs::CurrentQueryStats();
  uint32_t step_index = 0;
  for (const EliminationStep& step : plan.steps()) {
    // Deadline gate: between steps every intermediate is a complete
    // relation, so this is the one safe place to abandon the run.
    CancellationCheckpoint();
    AnnotatedRelation<K>& result = relations[step.result_atom];
    result.Reset(plan.vars_of(step.result_atom), storage);

    const uint64_t start_ns = tracer != nullptr ? obs::Tracer::NowNs() : 0;
    uint64_t rows_in = 0;
    if (step.rule == EliminationRule::kProjectVariable) {
      // Rule 1: ⊕-project `step.variable` out of `step.source_atom`.
      AnnotatedRelation<K>& source = relations[step.source_atom];
      const size_t drop_pos = step.drop_pos;
      HIERARQ_CHECK_LT(drop_pos, source.schema().size());
      HIERARQ_CHECK_EQ(source.schema()[drop_pos], step.variable);
      rows_in = source.size();
      source.ProjectDropInto(drop_pos, plus, &result);
      source.Clear();
    } else {
      // Rule 2: ⊗-join over the union of supports.
      AnnotatedRelation<K>& left = relations[step.left_atom];
      AnnotatedRelation<K>& right = relations[step.right_atom];
      rows_in = left.size() + right.size();
      AnnotatedRelation<K>::JoinUnionInto(left, right, times, monoid.Zero(),
                                          &result);
      left.Clear();
      right.Clear();
    }
    if (query_stats != nullptr) {
      query_stats->RecordStep(
          step.rule == EliminationRule::kProjectVariable ? 1 : 2, rows_in,
          result.size(), /*parallel=*/false);
    }
    if (tracer != nullptr) {
      obs::TraceStepArgs args;
      args.step_index = step_index;
      args.rule = step.rule == EliminationRule::kProjectVariable ? 1 : 2;
      args.backend = result.storage();
      args.simd = simd::ActiveLevel();
      args.rows_in = rows_in;
      args.rows_out = result.size();
      tracer->EmitStep(start_ns, obs::Tracer::NowNs(), args);
    }
    ++step_index;
  }

  // The final atom is nullary; its only possible key is the empty tuple.
  // Move the annotation out (it can be a whole provenance tree or #Sat
  // vector) and clear the slot so a reused scratch doesn't retain it.
  AnnotatedRelation<K>& final_rel = relations[plan.final_atom()];
  auto [slot, inserted] = final_rel.FindOrInsert(Tuple{});
  K result = inserted ? monoid.Zero() : std::move(*slot);
  final_rel.Clear();
  return result;
}

/// Runs Algorithm 1 over a pre-built plan and annotated database.
/// `input.relations` must be indexed by query atom position (as produced by
/// `AnnotateForQuery`). Consumes `input`.
template <TwoMonoid M>
typename M::value_type RunAlgorithm1(
    const EliminationPlan& plan, const M& monoid,
    AnnotatedDatabase<typename M::value_type>&& input) {
  using K = typename M::value_type;

  HIERARQ_CHECK_EQ(input.relations.size(), plan.num_base_atoms());
  std::vector<AnnotatedRelation<K>> relations;
  relations.reserve(plan.num_atoms());
  for (auto& rel : input.relations) {
    relations.push_back(std::move(rel));
  }
  relations.resize(plan.num_atoms());
  return RunAlgorithm1InPlace(plan, monoid, relations);
}

/// Convenience wrapper: plans the query, annotates `facts` via `annotator`
/// into the `storage` backend and runs Algorithm 1. Fails with
/// kNotHierarchical for non-hierarchical queries. Callers that evaluate
/// repeatedly should hold an `Evaluator` (core/evaluator.h) instead, which
/// caches the plan and reuses buffers.
template <TwoMonoid M>
Result<typename M::value_type> RunAlgorithm1OnQuery(
    const ConjunctiveQuery& query, const M& monoid, const Database& facts,
    const std::function<typename M::value_type(const Fact&)>& annotator,
    StorageKind storage = kDefaultStorageKind) {
  using K = typename M::value_type;
  HIERARQ_ASSIGN_OR_RETURN(EliminationPlan plan,
                           EliminationPlan::Build(query));
  auto annotated = AnnotateForQuery<K>(
      query, facts, annotator,
      [&monoid](const K& a, const K& b) { return monoid.Plus(a, b); },
      storage);
  return RunAlgorithm1(plan, monoid, std::move(annotated));
}

}  // namespace hierarq

#endif  // HIERARQ_CORE_ALGORITHM1_H_
