#ifndef HIERARQ_SERVICE_BATCH_SOLVERS_H_
#define HIERARQ_SERVICE_BATCH_SOLVERS_H_

/// \file batch_solvers.h
/// \brief The five solvers' batchable paths, routed through `EvalService`.
///
/// Two batching shapes, matching how each problem parallelizes:
///
///   * *Shared-annotation* batches (count, PQE, expected multiplicity,
///     resilience): many queries over one database in one monoid — one
///     base-relation annotation pass serves the whole group, replays fan
///     out across the workers.
///   * *Fan-out* batches (provenance, Shapley): the annotation is
///     query-local (provenance numbers each query's facts from zero) or
///     the databases are perturbed per run (Shapley evaluates 2·|Dn|
///     Algorithm 1 instances), so the win is spreading the independent
///     runs across the pool, each on a worker-owned Evaluator behind the
///     shared plan cache.
///
/// All functions block until their results are ready and may be called
/// concurrently from multiple client threads; none may be called from
/// inside a pool task.

#include <utility>
#include <vector>

#include "hierarq/core/provenance_pipeline.h"
#include "hierarq/data/database.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/query/query.h"
#include "hierarq/service/eval_service.h"
#include "hierarq/util/fraction.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Number of satisfying assignments of each query over `db` (counting
/// semiring — the Algorithm 1 side of `hierarq_cli count`). One result per
/// query, in order; non-hierarchical queries fail individually.
std::vector<Result<uint64_t>> CountBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const Database& db);

/// Pr[Q] of each query over one tuple-independent database
/// (Theorem 5.8), sharing a single probability-annotation pass.
std::vector<Result<double>> EvaluateProbabilityBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const TidDatabase& db);

/// E[Q(D)] of each query over one TID database, sharing one pass.
std::vector<Result<double>> ExpectedMultiplicityBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const TidDatabase& db);

/// Resilience of each query over one (exogenous, endogenous) split,
/// sharing one cost-annotation pass over the combined database.
/// `cancel` (optional) bounds the replays — see core/cancel.h.
std::vector<Result<uint64_t>> ComputeResilienceBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const Database& exogenous, const Database& endogenous,
    const CancelToken* cancel = nullptr);

/// Read-once provenance of each query over `db`. Fact tables are
/// query-local, so this fans the queries out across the workers instead of
/// sharing an annotation pass.
std::vector<Result<ProvenanceResult>> ComputeProvenanceBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const Database& db);

/// Shapley values of all endogenous facts (Theorem 5.16) with the per-fact
/// #Sat computations — 2·|Dn| full Algorithm 1 runs — spread across the
/// service's workers. Results in `endogenous.AllFacts()` order; matches
/// the single-threaded `AllShapleyValues` exactly. With `cancel` set, the
/// whole call fails kDeadlineExceeded if any per-fact run is cut off.
Result<std::vector<std::pair<Fact, Fraction>>> AllShapleyValues(
    EvalService& service, const ConjunctiveQuery& query,
    const Database& exogenous, const Database& endogenous,
    const CancelToken* cancel = nullptr);

}  // namespace hierarq

#endif  // HIERARQ_SERVICE_BATCH_SOLVERS_H_
