#ifndef HIERARQ_SERVICE_EVAL_SERVICE_H_
#define HIERARQ_SERVICE_EVAL_SERVICE_H_

/// \file eval_service.h
/// \brief `EvalService` — the concurrent, batching evaluation service.
///
/// The server-shaped front door to Algorithm 1, built directly on the
/// paper's phase split. The query-only phase (plan build) is shared
/// process-wide through a `SharedPlanCache`; the data phase is shared per
/// batch: requests are grouped by (database, monoid), each group's base
/// relations are annotated **once** (`AnnotateForQuerySet` — the base
/// scan dominates evaluation, so k queries over one database stop paying
/// for k scans), and every query's plan then replays against the shared
/// annotations on a fixed `WorkerPool`. Each worker owns an `Evaluator`
/// whose plans delegate to the shared cache and whose scratch
/// `AnnotatedRelation` buffers are private, so replays run lock-free.
///
/// Two cross-batch amortizations sit on top of the per-batch sharing:
///
///   * **Generation-keyed annotation cache.** A group that names its
///     annotator (`BatchRequest::annotator_id`) gets its annotation pool
///     cached under (database identity, generation, annotator id, K) and
///     lazily *extended* by later groups that need new signatures — two
///     batches over the same `VersionedDatabase` snapshot stop paying for
///     the base scan twice. A generation bump (one `DeltaBatch` applied)
///     invalidates exactly the stale entry. Anonymous groups (empty id)
///     keep the per-group pool. The cache is LRU-bounded
///     (`Options.annotation_cache_max_entries`), so long-running services
///     over many databases hold a working set, not a history.
///   * **Zero-copy singleton replay.** Within a group, a pool entry used
///     by exactly one query is *moved* into that worker's scratch
///     (`AnnotatedRelation::AdoptFrom`) instead of copied — the copy is
///     the service's main single-query overhead versus a bare Evaluator.
///     Cached pools are never moved from (they outlive the group).
///   * **Intra-query parallelism for single huge replays.** A group with
///     one plannable query over a database past
///     `Options.intra_query_min_support` cannot benefit from across-query
///     fan-out; with `Options.intra_query_threads > 1` its replay instead
///     runs hash-shard-parallel (core/parallel.h) on the same worker
///     pool, so one big request scales with cores instead of occupying
///     one worker while the rest idle.
///
/// Thread model: `EvaluateBatch` / `EvaluateMany` may be called
/// concurrently from any number of client threads (each call blocks until
/// its own results are ready); they must not be called from inside a pool
/// task. Kara, Nikolic, Olteanu & Zhang ("Trade-offs in Static and
/// Dynamic Evaluation of Hierarchical Queries") motivate exactly this
/// preprocess-once/answer-many split at server scale.

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/cancel.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/data/database.h"
#include "hierarq/data/storage.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/query_stats.h"
#include "hierarq/query/query.h"
#include "hierarq/service/shared_plan_cache.h"
#include "hierarq/util/worker_pool.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// One (database, annotator) group of queries evaluated together. Every
/// query in the group replays against ONE shared annotation of
/// `database`'s base relations, so the annotator (and the monoid, fixed
/// by the EvaluateBatch call) must be meaningful for the whole group — a
/// group models "the requests that arrived for this database".
template <typename K>
struct BatchRequest {
  const Database* database = nullptr;
  std::function<K(const Fact&)> annotator;
  std::vector<const ConjunctiveQuery*> queries;

  /// Cache identity of `annotator` (std::function is not comparable, so
  /// the caller names it). Non-empty ⇒ the group's annotation pool is
  /// cached under (database identity, generation, annotator_id, K) and
  /// reused by later groups with the same key; empty ⇒ per-group pool,
  /// no caching.
  std::string annotator_id;
  /// The database version the caller is evaluating against — pair it with
  /// `VersionedDatabase::generation()` (a mutated-in-place plain Database
  /// with a stale generation would be served stale cached annotations).
  uint64_t generation = 0;
  /// Stable database identity for the cache key —
  /// `VersionedDatabase::uid()`, never reused across objects. 0 (plain
  /// Databases) falls back to keying on the `database` pointer, which can
  /// alias a *new* database allocated at a freed address; versioned
  /// callers are immune.
  uint64_t database_uid = 0;
  /// Optional deadline/cancellation for this group (core/cancel.h).
  /// Checked between elimination steps of every replay; queries cut off
  /// mid-replay report kDeadlineExceeded individually, already-finished
  /// queries in the same group keep their values. Must outlive the call.
  const CancelToken* cancel = nullptr;
  /// Optional per-query resource accounting (obs/query_stats.h), filled
  /// for the group's FIRST query only — the wire protocol sends
  /// single-query groups, and one collector per group keeps the replay
  /// fan-out free of cross-thread aggregation. Must outlive the call.
  obs::QueryStats* stats = nullptr;
};

/// Per-group results, one per query in request order. Non-hierarchical
/// queries fail individually (kNotHierarchical) without affecting the
/// rest of the group.
template <typename K>
struct BatchResult {
  std::vector<Result<K>> values;
};

/// Aggregated service counters — a *snapshot view* of the service's
/// metrics registry (`EvalService::metrics()` is the one source of
/// truth; this struct exists for call sites that want plain numbers).
/// Monotonic; a snapshot is cheap and may be taken while requests are in
/// flight.
struct ServiceStats {
  size_t batches = 0;             ///< EvaluateBatch/EvaluateMany calls.
  size_t groups = 0;              ///< (database, monoid) groups processed.
  size_t requests = 0;            ///< Individual query evaluations.
  size_t annotation_scans = 0;    ///< Base-relation annotation passes run.
  size_t annotations_shared = 0;  ///< Atom annotations served by a shared pass.
  size_t plans_built = 0;         ///< From the shared plan cache.
  size_t plan_cache_hits = 0;     ///< From the shared plan cache.
  size_t singleton_moves = 0;     ///< Pool entries adopted (not copied).
  size_t annotation_cache_hits = 0;  ///< Groups served by a cached pool.
  size_t annotation_cache_misses = 0;  ///< Named groups that had to scan.
  size_t annotation_cache_invalidations = 0;  ///< Stale pools replaced.
  size_t annotation_cache_evictions = 0;  ///< Pools LRU-evicted at capacity.
  size_t intra_parallel_replays = 0;  ///< Replays run shard-parallel.
};

class EvalService {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    size_t num_workers = 0;
    /// Storage backend for the shared annotation pools and every worker's
    /// scratch relations (data/storage.h) — the service-level engine
    /// option behind `hierarq_cli batch ... --storage=...`.
    StorageKind storage = kDefaultStorageKind;
    /// > 1 routes a group that holds exactly ONE plannable query over a
    /// big database through intra-query shard parallelism
    /// (core/parallel.h) on the service's own pool, instead of queueing
    /// the single replay behind the batch fan-out as one indivisible
    /// task. 0 or 1 disables the route (the legacy behavior).
    size_t intra_query_threads = 0;
    /// Databases below this many facts never take the intra-query route —
    /// per-step fan-out only pays for itself on large replays.
    size_t intra_query_min_support = 65536;
    /// Per-step serial cutoff forwarded to the intra evaluator
    /// (Evaluator::Options::parallel_min_rows).
    size_t parallel_min_rows = 4096;
    /// Adaptive per-step execution (core/adaptive.h) for the intra-query
    /// route: the single-huge-replay evaluator exists even when
    /// `intra_query_threads` is unset and decides each step's backend,
    /// fan-out, and cutoff from stats + measured feedback. Batch fan-out
    /// is untouched — across-query parallelism already saturates the
    /// pool, so each worker's serial replay is the right fixed point.
    bool adaptive = false;
    /// Upper bound on cached annotation pools (the generation-keyed
    /// cache); the least-recently-used entry is evicted past it, so
    /// long-running services over many databases stop growing without a
    /// manual ClearAnnotationCache. 0 means unbounded. In-flight groups
    /// pin their pool via shared_ptr, so eviction never invalidates a
    /// running batch.
    size_t annotation_cache_max_entries = 64;
  };

  /// Default configuration: one worker per hardware thread.
  EvalService();
  explicit EvalService(Options options);

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  size_t num_workers() const { return pool_.num_workers(); }
  StorageKind storage() const { return storage_; }
  SharedPlanCache& plan_cache() { return plan_cache_; }
  WorkerPool& pool() { return pool_; }

  /// The evaluator owned by worker `worker_index` (shared plans, private
  /// scratch). Only that worker's current task may use it — batch solvers
  /// (service/batch_solvers.h) reach it from inside pool tasks, keyed by
  /// the worker index the task receives.
  Evaluator& worker_evaluator(size_t worker_index) {
    return *worker_evaluators_[worker_index];
  }

  /// Plain-number snapshot of `metrics()` (plus the shared plan cache's
  /// counters) — the compatibility view; both read the same instruments,
  /// so they cannot drift.
  ServiceStats stats() const;

  /// This service's metrics registry: every ServiceStats field plus the
  /// group-size histogram and queue-depth gauge, renderable as text/JSON
  /// (`hierarq_cli batch ... --metrics`). Per-instance so two services in
  /// one process don't blend their numbers; engine-core and worker-pool
  /// metrics stay in MetricsRegistry::Global().
  const obs::MetricsRegistry& metrics() const { return registry_; }

  /// Evaluates a batch of request groups in monoid `M`. Groups run in
  /// order; within a group, per-query replays fan out across the workers.
  /// Returns one BatchResult per request, query results in request order.
  template <TwoMonoid M>
  std::vector<BatchResult<typename M::value_type>> EvaluateBatch(
      const M& monoid,
      const std::vector<BatchRequest<typename M::value_type>>& requests) {
    batches_->Add();
    std::vector<BatchResult<typename M::value_type>> out;
    out.reserve(requests.size());
    for (const BatchRequest<typename M::value_type>& request : requests) {
      out.push_back(EvaluateGroup(monoid, request));
    }
    return out;
  }

  /// Single-group convenience: evaluates `queries` over `facts` with a
  /// common annotator, returning one result per query in order.
  template <TwoMonoid M>
  std::vector<Result<typename M::value_type>> EvaluateMany(
      const M& monoid, const std::vector<const ConjunctiveQuery*>& queries,
      const Database& facts,
      const std::function<typename M::value_type(const Fact&)>& annotator,
      const CancelToken* cancel = nullptr,
      obs::QueryStats* stats = nullptr) {
    batches_->Add();
    BatchRequest<typename M::value_type> request;
    request.database = &facts;
    request.annotator = annotator;
    request.queries = queries;
    request.cancel = cancel;
    request.stats = stats;
    return EvaluateGroup(monoid, request).values;
  }

  /// EvaluateMany against a `VersionedDatabase` snapshot with a *named*
  /// annotator: the annotation pool is cached under the database's
  /// (uid, current generation), so repeated calls between updates
  /// annotate nothing, and one applied `DeltaBatch` invalidates exactly
  /// this entry. The cross-batch face of the incremental subsystem.
  /// Caller contract: the database must not have a `DeltaBatch` applied
  /// *while this call runs* — the generation proves a finished scan
  /// fresh, not a scan in flight (see VersionedDatabase's thread model).
  template <TwoMonoid M>
  std::vector<Result<typename M::value_type>> EvaluateMany(
      const M& monoid, const std::vector<const ConjunctiveQuery*>& queries,
      const VersionedDatabase& database,
      const std::function<typename M::value_type(const Fact&)>& annotator,
      std::string annotator_id, const CancelToken* cancel = nullptr,
      obs::QueryStats* stats = nullptr) {
    batches_->Add();
    BatchRequest<typename M::value_type> request;
    request.database = &database.facts();
    request.annotator = annotator;
    request.queries = queries;
    request.annotator_id = std::move(annotator_id);
    request.generation = database.generation();
    request.database_uid = database.uid();
    request.cancel = cancel;
    request.stats = stats;
    return EvaluateGroup(monoid, request).values;
  }

  /// Number of live annotation-cache entries (distinct (database,
  /// annotator, K) keys; each holds one generation).
  size_t annotation_cache_size() const {
    std::lock_guard<std::mutex> lock(annotation_cache_mutex_);
    return annotation_cache_.size();
  }

  /// Drops every cached annotation pool (in-flight groups keep theirs
  /// alive until they finish). Routine growth is already bounded by
  /// `Options.annotation_cache_max_entries` LRU eviction; this is the
  /// drop-everything override (tests, explicit memory pressure).
  void ClearAnnotationCache() {
    std::lock_guard<std::mutex> lock(annotation_cache_mutex_);
    annotation_cache_.clear();
    lru_.clear();
  }

 private:
  template <TwoMonoid M>
  BatchResult<typename M::value_type> EvaluateGroup(
      const M& monoid, const BatchRequest<typename M::value_type>& request) {
    using K = typename M::value_type;
    HIERARQ_CHECK(request.database != nullptr);
    groups_->Add();
    requests_->Add(request.queries.size());
    group_size_hist_->Observe(request.queries.size());
    queue_depth_gauge_->Set(static_cast<int64_t>(pool_.queue_depth()));
    const size_t n = request.queries.size();
    obs::Span group_span("service.group", "service");

    // Query phase: resolve every plan through the shared cache. Failures
    // (non-hierarchical queries) are recorded per slot. The accounting
    // probe runs before resolution — GetPlan below inserts on miss, so a
    // post-hoc probe would always report a hit.
    if (request.stats != nullptr && n > 0) {
      request.stats->plan_cache_hit =
          plan_cache_.Contains(*request.queries.front());
    }
    std::vector<Result<const EliminationPlan*>> plans;
    plans.reserve(n);
    std::vector<size_t> planned;  // Slots whose plan resolved.
    for (size_t i = 0; i < n; ++i) {
      plans.push_back(plan_cache_.GetPlan(*request.queries[i]));
      if (plans.back().ok()) {
        planned.push_back(i);
      }
    }

    // Data phase, annotate once: one pass over the base relations serves
    // every query in the group (the batching win). Named annotators go
    // through the generation-keyed cache; anonymous groups build a local
    // pool whose singleton entries the replays may move from.
    std::vector<const ConjunctiveQuery*> planned_queries;
    planned_queries.reserve(planned.size());
    for (size_t i : planned) {
      planned_queries.push_back(request.queries[i]);
    }
    const auto plus = [&monoid](const K& a, const K& b) {
      return monoid.Plus(a, b);
    };
    std::shared_ptr<AnnotationPool<K>> cached;  // Pins a cached pool.
    AnnotationPool<K> local_pool;
    ReplaySourceSet<K> sources;
    size_t scans = 0;
    size_t shared = 0;
    if (!request.annotator_id.empty()) {
      std::shared_ptr<std::mutex> fill_mutex;
      bool hit = false;
      {
        std::lock_guard<std::mutex> lock(annotation_cache_mutex_);
        auto [it, inserted] =
            annotation_cache_.try_emplace(AnnotationCacheKey{
                request.database, request.database_uid,
                std::type_index(typeid(K)), request.annotator_id});
        AnnotationCacheEntry& entry = it->second;
        // LRU maintenance: every touch moves the entry to the front, so
        // the back is always the stalest key.
        if (inserted) {
          lru_.push_front(it->first);
          entry.lru_position = lru_.begin();
        } else {
          lru_.splice(lru_.begin(), lru_, entry.lru_position);
        }
        if (entry.pool == nullptr ||
            entry.generation != request.generation) {
          if (entry.pool != nullptr) {
            annotation_cache_invalidations_->Add();
          }
          entry.generation = request.generation;
          entry.pool = std::make_shared<AnnotationPool<K>>();
          entry.fill_mutex = std::make_shared<std::mutex>();
        } else {
          hit = true;
        }
        cached = std::static_pointer_cast<AnnotationPool<K>>(entry.pool);
        fill_mutex = entry.fill_mutex;
        // Evict past capacity — never the entry just touched (it sits at
        // the LRU front). In-flight groups hold their pool's shared_ptr,
        // so a victim's memory lives until its last reader finishes.
        if (annotation_cache_max_entries_ > 0 &&
            annotation_cache_.size() > annotation_cache_max_entries_) {
          const AnnotationCacheKey victim = lru_.back();
          lru_.pop_back();
          annotation_cache_.erase(victim);
          annotation_cache_evictions_->Add();
        }
      }
      if (hit) {
        annotation_cache_hits_->Add();
      } else {
        annotation_cache_misses_->Add();
      }
      {
        // Extend with missing signatures and resolve under the entry's
        // fill lock (concurrent groups may extend the same pool). Replays
        // run after release: entries are immutable once annotated and
        // unordered_map growth never moves values. Cached entries are
        // never movable — the pool outlives the group.
        std::lock_guard<std::mutex> fill(*fill_mutex);
        const size_t pre_scans = cached->scans;
        const size_t pre_reused = cached->reused;
        AnnotateForQuerySetInto<K>(planned_queries, *request.database,
                                   request.annotator, plus, storage_,
                                   cached.get());
        scans = cached->scans - pre_scans;
        shared = cached->reused - pre_reused;
        sources = ResolveReplaySources<K>(planned_queries, cached.get(),
                                          /*allow_moves=*/false);
      }
    } else {
      AnnotateForQuerySetInto<K>(planned_queries, *request.database,
                                 request.annotator, plus, storage_,
                                 &local_pool);
      scans = local_pool.scans;
      shared = local_pool.reused;
      sources = ResolveReplaySources<K>(planned_queries, &local_pool,
                                        /*allow_moves=*/true);
      singleton_moves_->Add(sources.movable);
    }
    annotation_scans_->Add(scans);
    annotations_shared_->Add(shared);

    // Replay phase. A group with exactly one plannable query over a big
    // database has nothing to fan out across queries — route it through
    // intra-query shard parallelism on the same pool (core/parallel.h)
    // instead of running it as one indivisible task behind the batch
    // queue. Everything else fans out across the workers as before.
    // Shared pool entries are read-only from here on; each worker copies
    // them into its own scratch (or adopts its exclusive singletons), so
    // replays never contend.
    std::vector<std::optional<K>> values(n);
    if (intra_evaluator_ != nullptr && planned.size() == 1 &&
        request.database->NumFacts() >= intra_query_min_support_) {
      const size_t slot = planned.front();
      // One intra evaluator (its scratch is identity); concurrent
      // singleton groups serialize here while their shard tasks still
      // interleave with other batches on the shared pool. This runs on
      // the client's thread — never inside a pool task — so ParallelFor
      // fan-out from it is safe.
      std::lock_guard<std::mutex> lock(intra_mutex_);
      try {
        ScopedCancel watch(request.cancel);
        obs::ScopedQueryStats accounting(
            slot == 0 ? request.stats : nullptr);
        values[slot] = intra_evaluator_->ReplayPlan(
            **plans[slot], monoid, *request.queries[slot],
            sources.per_query.front());
      } catch (const CancelledError&) {
        // Slot stays empty; reported as kDeadlineExceeded below.
      }
      intra_parallel_replays_->Add();
    } else {
      pool_.ParallelFor(planned.size(), [&](size_t worker, size_t j) {
        const size_t slot = planned[j];
        // CancelledError must never escape a pool task (worker_pool.h:
        // tasks must not throw); it is absorbed here and surfaced as a
        // per-slot status at assembly.
        try {
          ScopedCancel watch(request.cancel);
          obs::ScopedQueryStats accounting(
              slot == 0 ? request.stats : nullptr);
          values[slot] = worker_evaluator(worker).ReplayPlan(
              **plans[slot], monoid, *request.queries[slot],
              sources.per_query[j]);
        } catch (const CancelledError&) {
        }
      });
    }

    BatchResult<K> out;
    out.values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!plans[i].ok()) {
        out.values.push_back(plans[i].status());
      } else if (values[i].has_value()) {
        out.values.push_back(std::move(*values[i]));
      } else {
        deadline_exceeded_->Add();
        out.values.push_back(request.cancel != nullptr &&
                                     request.cancel->cancelled()
                                 ? Status::DeadlineExceeded(
                                       "evaluation cancelled by caller")
                                 : Status::DeadlineExceeded(
                                       "deadline expired mid-replay; "
                                       "database untouched"));
      }
    }
    return out;
  }

  /// One cached annotation pool per (database identity, K, annotator id);
  /// `generation` stamps the snapshot it was built from. The pool is held
  /// by shared_ptr so invalidation can replace the entry while in-flight
  /// groups finish against the old pool; `fill_mutex` serializes lazy
  /// extension (and source resolution) per entry, type-erased behind
  /// shared_ptr<void> because the service is monoid-generic.
  struct AnnotationCacheKey {
    const Database* database;
    /// VersionedDatabase::uid(), or 0 for plain (pointer-keyed) requests
    /// — a nonzero uid is never reused, so entries cannot alias a new
    /// database allocated at a freed address.
    uint64_t database_uid;
    std::type_index value_type;
    std::string annotator_id;
    bool operator==(const AnnotationCacheKey&) const = default;
  };
  struct AnnotationCacheKeyHash {
    size_t operator()(const AnnotationCacheKey& key) const {
      size_t h = std::hash<const Database*>{}(key.database);
      h = h * 1099511628211ULL ^ static_cast<size_t>(key.database_uid);
      h = h * 1099511628211ULL ^ key.value_type.hash_code();
      return h * 1099511628211ULL ^ std::hash<std::string>{}(key.annotator_id);
    }
  };
  struct AnnotationCacheEntry {
    uint64_t generation = 0;
    std::shared_ptr<void> pool;  // shared_ptr<AnnotationPool<K>>.
    std::shared_ptr<std::mutex> fill_mutex;
    /// This entry's node in `lru_` (front = most recently touched).
    std::list<AnnotationCacheKey>::iterator lru_position;
  };

  SharedPlanCache plan_cache_;
  StorageKind storage_ = kDefaultStorageKind;
  std::vector<std::unique_ptr<Evaluator>> worker_evaluators_;
  /// The single-huge-replay evaluator: shard-parallel on `pool_`, used
  /// under `intra_mutex_` from client threads only. Null when
  /// Options.intra_query_threads <= 1.
  std::unique_ptr<Evaluator> intra_evaluator_;
  std::mutex intra_mutex_;
  size_t intra_query_min_support_ = 0;
  size_t annotation_cache_max_entries_ = 0;
  mutable std::mutex annotation_cache_mutex_;
  std::unordered_map<AnnotationCacheKey, AnnotationCacheEntry,
                     AnnotationCacheKeyHash>
      annotation_cache_;
  /// Recency order of `annotation_cache_` keys, most recent first; guarded
  /// by `annotation_cache_mutex_`.
  std::list<AnnotationCacheKey> lru_;
  /// The one source of truth for service counters; `ServiceStats` is a
  /// read-through view. Handles below are resolved once in the
  /// constructor (registry pointers are stable for its lifetime).
  obs::MetricsRegistry registry_;
  obs::Counter* batches_ = nullptr;
  obs::Counter* groups_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* annotation_scans_ = nullptr;
  obs::Counter* annotations_shared_ = nullptr;
  obs::Counter* singleton_moves_ = nullptr;
  obs::Counter* annotation_cache_hits_ = nullptr;
  obs::Counter* annotation_cache_misses_ = nullptr;
  obs::Counter* annotation_cache_invalidations_ = nullptr;
  obs::Counter* annotation_cache_evictions_ = nullptr;
  obs::Counter* intra_parallel_replays_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;  ///< Queries cut off mid-replay.
  obs::Histogram* group_size_hist_ = nullptr;  ///< Queries per group.
  obs::Gauge* queue_depth_gauge_ = nullptr;  ///< Pool queue at group entry.
  // Declared last: the pool joins (draining in-flight tasks) before any
  // member a task could touch is destroyed.
  WorkerPool pool_;
};

}  // namespace hierarq

#endif  // HIERARQ_SERVICE_EVAL_SERVICE_H_
