#ifndef HIERARQ_SERVICE_EVAL_SERVICE_H_
#define HIERARQ_SERVICE_EVAL_SERVICE_H_

/// \file eval_service.h
/// \brief `EvalService` — the concurrent, batching evaluation service.
///
/// The server-shaped front door to Algorithm 1, built directly on the
/// paper's phase split. The query-only phase (plan build) is shared
/// process-wide through a `SharedPlanCache`; the data phase is shared per
/// batch: requests are grouped by (database, monoid), each group's base
/// relations are annotated **once** (`AnnotateForQuerySet` — the base
/// scan dominates evaluation, so k queries over one database stop paying
/// for k scans), and every query's plan then replays against the shared
/// annotations on a fixed `WorkerPool`. Each worker owns an `Evaluator`
/// whose plans delegate to the shared cache and whose scratch
/// `AnnotatedRelation` buffers are private, so replays run lock-free.
///
/// Thread model: `EvaluateBatch` / `EvaluateMany` may be called
/// concurrently from any number of client threads (each call blocks until
/// its own results are ready); they must not be called from inside a pool
/// task. Kara, Nikolic, Olteanu & Zhang ("Trade-offs in Static and
/// Dynamic Evaluation of Hierarchical Queries") motivate exactly this
/// preprocess-once/answer-many split at server scale.

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/evaluator.h"
#include "hierarq/data/database.h"
#include "hierarq/data/storage.h"
#include "hierarq/query/query.h"
#include "hierarq/service/shared_plan_cache.h"
#include "hierarq/service/worker_pool.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// One (database, annotator) group of queries evaluated together. Every
/// query in the group replays against ONE shared annotation of
/// `database`'s base relations, so the annotator (and the monoid, fixed
/// by the EvaluateBatch call) must be meaningful for the whole group — a
/// group models "the requests that arrived for this database".
template <typename K>
struct BatchRequest {
  const Database* database = nullptr;
  std::function<K(const Fact&)> annotator;
  std::vector<const ConjunctiveQuery*> queries;
};

/// Per-group results, one per query in request order. Non-hierarchical
/// queries fail individually (kNotHierarchical) without affecting the
/// rest of the group.
template <typename K>
struct BatchResult {
  std::vector<Result<K>> values;
};

/// Aggregated service counters. Monotonic; a snapshot is cheap and may be
/// taken while requests are in flight.
struct ServiceStats {
  size_t batches = 0;             ///< EvaluateBatch/EvaluateMany calls.
  size_t groups = 0;              ///< (database, monoid) groups processed.
  size_t requests = 0;            ///< Individual query evaluations.
  size_t annotation_scans = 0;    ///< Base-relation annotation passes run.
  size_t annotations_shared = 0;  ///< Atom annotations served by a shared pass.
  size_t plans_built = 0;         ///< From the shared plan cache.
  size_t plan_cache_hits = 0;     ///< From the shared plan cache.
};

class EvalService {
 public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    size_t num_workers = 0;
    /// Storage backend for the shared annotation pools and every worker's
    /// scratch relations (data/storage.h) — the service-level engine
    /// option behind `hierarq_cli batch ... --storage=...`.
    StorageKind storage = kDefaultStorageKind;
  };

  /// Default configuration: one worker per hardware thread.
  EvalService();
  explicit EvalService(Options options);

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  size_t num_workers() const { return pool_.num_workers(); }
  StorageKind storage() const { return storage_; }
  SharedPlanCache& plan_cache() { return plan_cache_; }
  WorkerPool& pool() { return pool_; }

  /// The evaluator owned by worker `worker_index` (shared plans, private
  /// scratch). Only that worker's current task may use it — batch solvers
  /// (service/batch_solvers.h) reach it from inside pool tasks, keyed by
  /// the worker index the task receives.
  Evaluator& worker_evaluator(size_t worker_index) {
    return *worker_evaluators_[worker_index];
  }

  ServiceStats stats() const;

  /// Evaluates a batch of request groups in monoid `M`. Groups run in
  /// order; within a group, per-query replays fan out across the workers.
  /// Returns one BatchResult per request, query results in request order.
  template <TwoMonoid M>
  std::vector<BatchResult<typename M::value_type>> EvaluateBatch(
      const M& monoid,
      const std::vector<BatchRequest<typename M::value_type>>& requests) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::vector<BatchResult<typename M::value_type>> out;
    out.reserve(requests.size());
    for (const BatchRequest<typename M::value_type>& request : requests) {
      out.push_back(EvaluateGroup(monoid, request));
    }
    return out;
  }

  /// Single-group convenience: evaluates `queries` over `facts` with a
  /// common annotator, returning one result per query in order.
  template <TwoMonoid M>
  std::vector<Result<typename M::value_type>> EvaluateMany(
      const M& monoid, const std::vector<const ConjunctiveQuery*>& queries,
      const Database& facts,
      const std::function<typename M::value_type(const Fact&)>& annotator) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    BatchRequest<typename M::value_type> request;
    request.database = &facts;
    request.annotator = annotator;
    request.queries = queries;
    return EvaluateGroup(monoid, request).values;
  }

 private:
  template <TwoMonoid M>
  BatchResult<typename M::value_type> EvaluateGroup(
      const M& monoid, const BatchRequest<typename M::value_type>& request) {
    using K = typename M::value_type;
    HIERARQ_CHECK(request.database != nullptr);
    groups_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(request.queries.size(), std::memory_order_relaxed);
    const size_t n = request.queries.size();

    // Query phase: resolve every plan through the shared cache. Failures
    // (non-hierarchical queries) are recorded per slot.
    std::vector<Result<const EliminationPlan*>> plans;
    plans.reserve(n);
    std::vector<size_t> planned;  // Slots whose plan resolved.
    for (size_t i = 0; i < n; ++i) {
      plans.push_back(plan_cache_.GetPlan(*request.queries[i]));
      if (plans.back().ok()) {
        planned.push_back(i);
      }
    }

    // Data phase, annotate once: one pass over the base relations serves
    // every query in the group (the batching win).
    std::vector<const ConjunctiveQuery*> planned_queries;
    planned_queries.reserve(planned.size());
    for (size_t i : planned) {
      planned_queries.push_back(request.queries[i]);
    }
    const auto plus = [&monoid](const K& a, const K& b) {
      return monoid.Plus(a, b);
    };
    const AnnotationPool<K> pool = AnnotateForQuerySet<K>(
        planned_queries, *request.database, request.annotator, plus,
        storage_);
    annotation_scans_.fetch_add(pool.scans, std::memory_order_relaxed);
    annotations_shared_.fetch_add(pool.reused, std::memory_order_relaxed);

    // Resolve each query's base relations here, on the caller thread, so
    // the workers never build signature strings or probe the pool.
    std::vector<std::vector<const AnnotatedRelation<K>*>> bases(n);
    for (size_t i : planned) {
      bases[i] = ResolveBases<K>(*request.queries[i], pool);
    }

    // Replay phase: fan the plans out across the workers. The pool is
    // read-only from here on; each worker copies the base relations into
    // its own scratch (Evaluator::ReplayPlan), so replays never contend.
    std::vector<std::optional<K>> values(n);
    pool_.ParallelFor(planned.size(), [&](size_t worker, size_t j) {
      const size_t slot = planned[j];
      values[slot] = worker_evaluator(worker).ReplayPlan(
          **plans[slot], monoid, *request.queries[slot], bases[slot]);
    });

    BatchResult<K> out;
    out.values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (plans[i].ok()) {
        out.values.push_back(std::move(*values[i]));
      } else {
        out.values.push_back(plans[i].status());
      }
    }
    return out;
  }

  SharedPlanCache plan_cache_;
  StorageKind storage_ = kDefaultStorageKind;
  std::vector<std::unique_ptr<Evaluator>> worker_evaluators_;
  std::atomic<size_t> batches_{0};
  std::atomic<size_t> groups_{0};
  std::atomic<size_t> requests_{0};
  std::atomic<size_t> annotation_scans_{0};
  std::atomic<size_t> annotations_shared_{0};
  // Declared last: the pool joins (draining in-flight tasks) before any
  // member a task could touch is destroyed.
  WorkerPool pool_;
};

}  // namespace hierarq

#endif  // HIERARQ_SERVICE_EVAL_SERVICE_H_
