#include "hierarq/service/shared_plan_cache.h"

#include <mutex>
#include <utility>

#include "hierarq/obs/metrics.h"

namespace hierarq {

namespace {

// The same global pair Evaluator's private cache bumps (evaluator.cpp):
// "planner.*" totals plan work across every cache in the process.
obs::Counter* PlansBuiltCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("planner.plans_built");
  return counter;
}

obs::Counter* PlanCacheHitsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("planner.plan_cache_hits");
  return counter;
}

}  // namespace

Result<const EliminationPlan*> SharedPlanCache::GetPlan(
    const ConjunctiveQuery& query) {
  const std::string key = query.ToString();
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      PlanCacheHitsCounter()->Add();
      return const_cast<const EliminationPlan*>(it->second.get());
    }
  }

  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Re-check: another thread may have built the plan between the locks.
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    PlanCacheHitsCounter()->Add();
    return const_cast<const EliminationPlan*>(it->second.get());
  }
  HIERARQ_ASSIGN_OR_RETURN(EliminationPlan plan,
                           EliminationPlan::Build(query));
  plans_built_.fetch_add(1, std::memory_order_relaxed);
  PlansBuiltCounter()->Add();
  auto owned = std::make_unique<EliminationPlan>(std::move(plan));
  const EliminationPlan* raw = owned.get();
  plans_.emplace(key, std::move(owned));
  return raw;
}

bool SharedPlanCache::Contains(const ConjunctiveQuery& query) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return plans_.find(query.ToString()) != plans_.end();
}

size_t SharedPlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return plans_.size();
}

SharedPlanCache::Stats SharedPlanCache::stats() const {
  Stats out;
  out.plans_built = plans_built_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace hierarq
