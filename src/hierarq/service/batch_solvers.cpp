#include "hierarq/service/batch_solvers.h"

#include <optional>

#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/core/expectation.h"
#include "hierarq/core/resilience.h"
#include "hierarq/core/shapley.h"

namespace hierarq {

namespace {

/// Unwraps a vector of optional results filled by pool tasks (every slot
/// is engaged once ParallelFor returns).
template <typename T>
std::vector<Result<T>> Collect(std::vector<std::optional<Result<T>>> slots) {
  std::vector<Result<T>> out;
  out.reserve(slots.size());
  for (std::optional<Result<T>>& slot : slots) {
    out.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace

std::vector<Result<uint64_t>> CountBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const Database& db) {
  const CountMonoid monoid;
  return service.EvaluateMany<CountMonoid>(
      monoid, queries, db, [](const Fact&) -> uint64_t { return 1; });
}

std::vector<Result<double>> EvaluateProbabilityBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const TidDatabase& db) {
  const ProbMonoid monoid;
  return service.EvaluateMany<ProbMonoid>(
      monoid, queries, db.facts(),
      [&db](const Fact& fact) { return db.Probability(fact); });
}

std::vector<Result<double>> ExpectedMultiplicityBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const TidDatabase& db) {
  const ExpectationMonoid monoid;
  return service.EvaluateMany<ExpectationMonoid>(
      monoid, queries, db.facts(),
      [&db](const Fact& fact) { return db.Probability(fact); });
}

std::vector<Result<uint64_t>> ComputeResilienceBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const Database& exogenous, const Database& endogenous,
    const CancelToken* cancel) {
  Result<Database> combined = exogenous.UnionWith(endogenous);
  if (!combined.ok()) {
    return std::vector<Result<uint64_t>>(queries.size(), combined.status());
  }
  const ResilienceMonoid monoid;
  return service.EvaluateMany<ResilienceMonoid>(
      monoid, queries, *combined, ResilienceCostAnnotator(exogenous), cancel);
}

std::vector<Result<ProvenanceResult>> ComputeProvenanceBatch(
    EvalService& service, const std::vector<const ConjunctiveQuery*>& queries,
    const Database& db) {
  std::vector<std::optional<Result<ProvenanceResult>>> slots(queries.size());
  service.pool().ParallelFor(queries.size(), [&](size_t worker, size_t i) {
    slots[i] =
        ComputeProvenance(service.worker_evaluator(worker), *queries[i], db);
  });
  return Collect(std::move(slots));
}

Result<std::vector<std::pair<Fact, Fraction>>> AllShapleyValues(
    EvalService& service, const ConjunctiveQuery& query,
    const Database& exogenous, const Database& endogenous,
    const CancelToken* cancel) {
  const std::vector<Fact> facts = endogenous.AllFacts();
  std::vector<std::optional<Result<Fraction>>> slots(facts.size());
  service.pool().ParallelFor(facts.size(), [&](size_t worker, size_t i) {
    // Absorb CancelledError inside the task (pool tasks must not throw)
    // and turn it into a per-slot status.
    try {
      ScopedCancel watch(cancel);
      slots[i] = ShapleyValue(service.worker_evaluator(worker), query,
                              exogenous, endogenous, facts[i]);
    } catch (const CancelledError&) {
      slots[i] = Status::DeadlineExceeded(
          "deadline expired during Shapley fan-out");
    }
  });

  std::vector<std::pair<Fact, Fraction>> out;
  out.reserve(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    if (!slots[i]->ok()) {
      return slots[i]->status();
    }
    out.emplace_back(facts[i], std::move(**slots[i]));
  }
  return out;
}

}  // namespace hierarq
