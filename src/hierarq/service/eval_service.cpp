#include "hierarq/service/eval_service.h"

#include <thread>

namespace hierarq {

namespace {

size_t ResolveWorkers(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

EvalService::EvalService() : EvalService(Options()) {}

EvalService::EvalService(Options options)
    : storage_(options.storage),
      intra_query_min_support_(options.intra_query_min_support),
      annotation_cache_max_entries_(options.annotation_cache_max_entries),
      pool_(ResolveWorkers(options.num_workers)) {
  // Resolve every metric handle once; the hot paths then pay one relaxed
  // atomic per bump (obs/metrics.h).
  batches_ = registry_.GetCounter("service.batches");
  groups_ = registry_.GetCounter("service.groups");
  requests_ = registry_.GetCounter("service.requests");
  annotation_scans_ = registry_.GetCounter("service.annotation_scans");
  annotations_shared_ = registry_.GetCounter("service.annotations_shared");
  singleton_moves_ = registry_.GetCounter("service.singleton_moves");
  annotation_cache_hits_ =
      registry_.GetCounter("service.annotation_cache_hits");
  annotation_cache_misses_ =
      registry_.GetCounter("service.annotation_cache_misses");
  annotation_cache_invalidations_ =
      registry_.GetCounter("service.annotation_cache_invalidations");
  annotation_cache_evictions_ =
      registry_.GetCounter("service.annotation_cache_evictions");
  intra_parallel_replays_ =
      registry_.GetCounter("service.intra_parallel_replays");
  deadline_exceeded_ = registry_.GetCounter("service.deadline_exceeded");
  group_size_hist_ = registry_.GetHistogram("service.group_size");
  queue_depth_gauge_ = registry_.GetGauge("service.queue_depth");

  // Workers idle until the first Submit, so populating their evaluators
  // after the pool starts is safe.
  const size_t n = pool_.num_workers();
  worker_evaluators_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    worker_evaluators_.push_back(
        std::make_unique<Evaluator>(&plan_cache_, options.storage));
  }
  if (options.intra_query_threads > 1 || options.adaptive) {
    // The intra evaluator borrows the service pool: one huge replay's
    // shard tasks interleave with batch fan-out tasks instead of
    // stalling behind them. It is only ever driven from client threads
    // (EvaluateGroup), satisfying ParallelFor's outside-the-pool rule.
    // With Options.adaptive the evaluator re-decides backend/fan-out per
    // elimination step (core/adaptive.h), capped by the pool size.
    Evaluator::Options intra;
    intra.storage = options.storage;
    intra.intra_query_threads =
        options.adaptive && options.intra_query_threads <= 1
            ? pool_.num_workers()
            : options.intra_query_threads;
    intra.parallel_min_rows = options.parallel_min_rows;
    intra.intra_pool = &pool_;
    intra.adaptive = options.adaptive;
    intra_evaluator_ = std::make_unique<Evaluator>(intra, &plan_cache_);
  }
}

ServiceStats EvalService::stats() const {
  // A read-through view of `registry_`: every field is the live counter's
  // value, so the struct and `metrics()` can never disagree.
  ServiceStats out;
  out.batches = batches_->Value();
  out.groups = groups_->Value();
  out.requests = requests_->Value();
  out.annotation_scans = annotation_scans_->Value();
  out.annotations_shared = annotations_shared_->Value();
  out.singleton_moves = singleton_moves_->Value();
  out.annotation_cache_hits = annotation_cache_hits_->Value();
  out.annotation_cache_misses = annotation_cache_misses_->Value();
  out.annotation_cache_invalidations =
      annotation_cache_invalidations_->Value();
  out.annotation_cache_evictions = annotation_cache_evictions_->Value();
  out.intra_parallel_replays = intra_parallel_replays_->Value();
  const SharedPlanCache::Stats plans = plan_cache_.stats();
  out.plans_built = plans.plans_built;
  out.plan_cache_hits = plans.cache_hits;
  return out;
}

}  // namespace hierarq
