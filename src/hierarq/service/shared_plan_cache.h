#ifndef HIERARQ_SERVICE_SHARED_PLAN_CACHE_H_
#define HIERARQ_SERVICE_SHARED_PLAN_CACHE_H_

/// \file shared_plan_cache.h
/// \brief Thread-safe, build-once `EliminationPlan` cache.
///
/// Plans are pure functions of the query text and immutable after
/// `EliminationPlan::Build` (Proposition 5.1 runs on the query structure
/// only), so a server needs exactly one plan per query *process-wide*, not
/// per thread. `SharedPlanCache` guards the lookup table with a
/// shared_mutex: readers take the shared lock for the lookup only and then
/// use the plan with no lock at all — the `unique_ptr` values pin every
/// plan's address across table rehashes. A miss upgrades to the exclusive
/// lock, re-checks, and builds; building under the exclusive lock is what
/// guarantees one `Build` per query text no matter how many threads race
/// on a cold cache (plan builds are query-complexity only — microseconds —
/// so holding the writer lock through one is cheaper than the thundering
/// herd of duplicate builds it prevents).
///
/// Implements `PlanProvider` (core/evaluator.h): per-worker `Evaluator`s
/// delegate their plan lookups here while keeping private scratch buffers.

#include <atomic>
#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "hierarq/core/evaluator.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

class SharedPlanCache : public PlanProvider {
 public:
  struct Stats {
    size_t plans_built = 0;  ///< EliminationPlan::Build invocations.
    size_t cache_hits = 0;   ///< Lookups served without building.
  };

  SharedPlanCache() = default;
  SharedPlanCache(const SharedPlanCache&) = delete;
  SharedPlanCache& operator=(const SharedPlanCache&) = delete;

  /// Returns the cached plan for `query`, building it at most once per
  /// query text across all threads. The pointer stays valid for the
  /// cache's lifetime. Fails with kNotHierarchical exactly as
  /// EliminationPlan::Build does; failures are not cached.
  Result<const EliminationPlan*> GetPlan(
      const ConjunctiveQuery& query) override;

  /// Whether a plan for `query` is already cached — a side-effect-free
  /// probe (no build, no counter bump) used by per-request accounting to
  /// report plan_cache_hit deterministically before resolving the plan.
  bool Contains(const ConjunctiveQuery& query) const;

  /// Number of distinct queries with a cached plan.
  size_t size() const;

  Stats stats() const;

 private:
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<EliminationPlan>> plans_;
  std::atomic<size_t> plans_built_{0};
  std::atomic<size_t> cache_hits_{0};
};

}  // namespace hierarq

#endif  // HIERARQ_SERVICE_SHARED_PLAN_CACHE_H_
