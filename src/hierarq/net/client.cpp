#include "hierarq/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>

namespace hierarq::net {

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    std::string_view host_port) {
  std::string host = "127.0.0.1";
  std::string_view port_text = host_port;
  const size_t colon = host_port.rfind(':');
  if (colon != std::string_view::npos) {
    if (colon > 0) {
      host = std::string(host_port.substr(0, colon));
    }
    port_text = host_port.substr(colon + 1);
  }
  if (port_text.empty()) {
    return Status::InvalidArgument("missing port in '" +
                                   std::string(host_port) + "'");
  }
  uint32_t port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad port in '" +
                                     std::string(host_port) + "'");
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("port out of range in '" +
                                     std::string(host_port) + "'");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("port 0 in '" + std::string(host_port) +
                                   "'");
  }
  return std::make_pair(std::move(host), static_cast<uint16_t>(port));
}

Status HierarqClient::Connect(const std::string& host, uint16_t port) {
  std::signal(SIGPIPE, SIG_IGN);
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Status::Internal("connect " + host + ":" +
                                           std::to_string(port) + ": " +
                                           std::strerror(errno));
    Close();
    return status;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void HierarqClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Frame> HierarqClient::RoundTrip(FrameType type, uint16_t flags,
                                       std::string_view payload,
                                       WireFormat format,
                                       FrameType expected) {
  if (fd_ < 0) {
    return Status::Internal("client is not connected");
  }
  const uint64_t request_id = next_request_id_++;
  HIERARQ_RETURN_NOT_OK(
      WriteFrame(fd_, type, format, flags, request_id, payload));
  while (true) {
    Result<Frame> frame = ReadFrame(fd_);
    if (!frame.ok()) {
      if (frame.status().Is(StatusCode::kNotFound)) {
        return Status::Internal("server closed the connection mid-request");
      }
      return frame.status();
    }
    if (frame->header.request_id == 0 &&
        frame->header.type == FrameType::kErrorFrame) {
      // Request id 0 is the CONNECTION-scoped error convention (wire.h):
      // the server rejected the connection itself (e.g. the connection
      // cap) before any request existed. Client ids start at 1, so this
      // can never collide with a response of ours — surface it instead
      // of skipping and hanging on a socket that will never answer.
      Result<ErrorPayload> error =
          DecodeError(frame->payload, frame->header.format);
      if (!error.ok()) {
        return error.status();
      }
      return Status(error->code, error->message);
    }
    if (frame->header.request_id != request_id) {
      // Not ours (e.g. a stale response after a timeout); skip it — ids
      // are strictly increasing per connection, so ours is still ahead.
      continue;
    }
    if (frame->header.type == FrameType::kErrorFrame) {
      Result<ErrorPayload> error =
          DecodeError(frame->payload, frame->header.format);
      if (!error.ok()) {
        return error.status();
      }
      return Status(error->code, error->message);
    }
    if (frame->header.type != expected) {
      return Status::Internal(
          "unexpected response frame type " +
          std::to_string(static_cast<int>(frame->header.type)));
    }
    return frame;
  }
}

Result<QueryResult> HierarqClient::Query(SolverKind solver,
                                         const std::string& query,
                                         uint64_t deadline_ms,
                                         bool capture_trace,
                                         bool capture_stats,
                                         const std::string& trace_id) {
  QueryRequest request;
  request.solver = solver;
  request.deadline_ms = deadline_ms;
  request.query = query;
  request.trace_id = trace_id;
  const uint16_t flags =
      static_cast<uint16_t>((capture_trace ? kFlagTrace : 0) |
                            (capture_stats ? kFlagStats : 0));
  const std::string encoded = EncodeQueryRequest(request, format());
  Result<Frame> frame = RoundTrip(FrameType::kQueryRequest, flags, encoded,
                                  format(), FrameType::kResultFrame);
  // The retry loop (opt-in, Options::max_retries). ONLY a decoded
  // kResourceExhausted error frame retries: the server answered
  // completely ("queue full, come back later") and applied nothing, so
  // re-sending is safe. Transport failures — including a torn read
  // after a partial response — return immediately: re-sending there
  // could double-evaluate against a desynchronized stream.
  for (uint32_t attempt = 0;
       !frame.ok() && frame.status().Is(StatusCode::kResourceExhausted) &&
       attempt < options_.max_retries;
       ++attempt) {
    const uint64_t shift = attempt < 20 ? attempt : 20;
    const uint64_t delay_ms =
        std::min(options_.backoff_cap_ms, options_.backoff_initial_ms
                                              << shift);
    // Jitter into [delay/2, delay] so rejected clients spread out.
    const uint64_t jittered_ms =
        delay_ms == 0 ? 0
                      : static_cast<uint64_t>(rng_.UniformInt(
                            static_cast<int64_t>(delay_ms / 2),
                            static_cast<int64_t>(delay_ms)));
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered_ms));
    ++retries_;
    frame = RoundTrip(FrameType::kQueryRequest, flags, encoded, format(),
                      FrameType::kResultFrame);
  }
  if (!frame.ok()) {
    return frame.status();
  }
  // Decode by what the RESPONSE announces, not what was asked: an old
  // server ignores unknown flag bits and answers without the sections.
  last_response_had_stats_ = (frame->header.flags & kFlagStats) != 0;
  return DecodeQueryResult(frame->payload, frame->header.format,
                           last_response_had_stats_,
                           (frame->header.flags & kFlagTrace) != 0);
}

Result<StatusPayload> HierarqClient::ServerStatus() {
  Result<Frame> frame = RoundTrip(FrameType::kStatusRequest, 0, "", format(),
                                  FrameType::kStatusResponse);
  if (!frame.ok()) {
    return frame.status();
  }
  return DecodeStatusPayload(frame->payload, frame->header.format);
}

std::string HierarqClient::MintTraceId() {
  // random_device per call: trace ids need uniqueness across processes
  // started in the same tick, not cryptographic strength.
  std::random_device rd;
  const uint64_t id = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

Result<DeltaAck> HierarqClient::ApplyDelta(std::string_view line) {
  Result<Frame> frame = RoundTrip(FrameType::kDeltaBatch, 0, line, format(),
                                  FrameType::kDeltaAck);
  if (!frame.ok()) {
    return frame.status();
  }
  return DecodeDeltaAck(frame->payload, frame->header.format);
}

Result<std::string> HierarqClient::Metrics(WireFormat rendering) {
  Result<Frame> frame = RoundTrip(FrameType::kMetricsRequest, 0, "",
                                  rendering, FrameType::kMetricsResponse);
  if (!frame.ok()) {
    return frame.status();
  }
  return std::move(frame->payload);
}

Status HierarqClient::Ping() {
  return RoundTrip(FrameType::kPing, 0, "", format(), FrameType::kPong)
      .status();
}

Status HierarqClient::Shutdown() {
  return RoundTrip(FrameType::kShutdown, 0, "", format(),
                   FrameType::kShutdown)
      .status();
}

}  // namespace hierarq::net
