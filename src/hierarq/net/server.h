#ifndef HIERARQ_NET_SERVER_H_
#define HIERARQ_NET_SERVER_H_

/// \file server.h
/// \brief `HierarqServer` — the TCP front door over `AsyncEvalService`.
///
/// One server owns one `VersionedDatabase` (the query/update target), an
/// optional endogenous database (for resilience/Shapley splits), and an
/// `AsyncEvalService`. It listens on loopback, speaks the wire protocol
/// (net/wire.h), and maps frames to the engine:
///
///   kQueryRequest  -> async submit; the evaluation runs on a submitter
///                     thread with the request's deadline armed and the
///                     response frame is written on completion, so the
///                     connection thread keeps reading (pipelining).
///                     Queue-full rejections answer immediately with
///                     kErrorFrame/resource-exhausted.
///   kDeltaBatch    -> the textual update grammar, parsed WHOLE
///                     (delta_text.h) then applied atomically under the
///                     write lock; kDeltaAck carries the new generation.
///   kMetricsRequest-> MetricsRegistry render (global + service + async),
///                     text or JSON per the frame's format.
///   kPing          -> kPong. kShutdown -> ack, then the server stops.
///
/// Concurrency: queries take the database lock SHARED (they only read;
/// EvalService's annotation cache keys on the generation), delta applies
/// take it UNIQUE (VersionedDatabase is single-writer and must not race
/// its readers), and a traced request takes it UNIQUE too — the process
/// tracer is a global, so an exclusive window is what guarantees the
/// captured trace covers exactly this request's plan (check_trace.py's
/// step-coverage invariant). Responses are serialized per connection by
/// a write mutex shared between the connection thread (errors, acks)
/// and submitter threads (results).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "hierarq/data/database.h"
#include "hierarq/data/loader.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/net/async_service.h"
#include "hierarq/net/wire.h"
#include "hierarq/obs/log.h"
#include "hierarq/obs/metrics.h"

namespace hierarq::persist {
class Persistor;
}  // namespace hierarq::persist

namespace hierarq::net {

class HierarqServer {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back
    /// from `port()` — how tests and the bench avoid collisions).
    uint16_t port = 0;
    AsyncEvalService::Options async;
    /// Slow-query log threshold: a query whose evaluation wall time
    /// reaches this many milliseconds is logged (query text, QueryStats,
    /// EXPLAIN ANALYZE) through `logger`. 0 logs EVERY query (CI uses
    /// this to force a line); negative disables the log.
    int64_t slow_query_ms = -1;
    /// Structured event sink for the slow-query log and protocol errors.
    /// nullptr = obs::Logger::Global() (stderr).
    obs::Logger* logger = nullptr;
    /// Durability (persist/persistor.h): when set (non-owning; must be
    /// Boot()ed with the database this server is constructed with, and
    /// outlive the server), every delta batch is WAL-appended and
    /// fsynced BEFORE it is applied and acked — an ack therefore
    /// guarantees the batch survives any crash — and a snapshot is
    /// written every `Persistor::Options::snapshot_every` acks, under
    /// the same exclusive lock as the applies. nullptr = in-memory only.
    persist::Persistor* persist = nullptr;
    /// Accepted-connection cap (0 = unlimited). The connection past the
    /// cap is accepted, answered with one resource-exhausted error frame
    /// (request id 0 — connection-scoped, see wire.h), and closed; the
    /// listen backlog is not consumed by a stuck peer.
    size_t max_connections = 0;
  };

  /// `db` is the primary database (count/pqe/expect queries, delta
  /// batches); `endogenous` is the endogenous split for resilience and
  /// Shapley (empty = those solvers answer invalid-argument). `dict`
  /// must be the dictionary the databases were loaded with (facts in
  /// Shapley results and delta ops render/parse through it) and must
  /// outlive the server.
  HierarqServer(Options options, VersionedDatabase db, Database endogenous,
                Dictionary* dict);
  ~HierarqServer();

  HierarqServer(const HierarqServer&) = delete;
  HierarqServer& operator=(const HierarqServer&) = delete;

  /// Binds, listens and starts the accept thread. Fails (kInternal) if
  /// the socket cannot be bound.
  Status Start();

  /// The bound port (valid after Start; resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Stops accepting, closes the listen socket, joins connection
  /// threads, and drains the async service. Idempotent; run by the
  /// destructor. Must not be called from a connection thread — a
  /// kShutdown frame instead flags `Wait()` awake so the OWNING thread
  /// runs the teardown.
  void Stop();

  /// Blocks until shutdown is requested (Stop() from another thread, or
  /// a kShutdown frame). The typical owner loop is Start(); Wait();
  /// Stop().
  void Wait();

  const VersionedDatabase& database() const { return db_; }
  AsyncEvalService& async() { return async_; }

  /// The server's own metrics registry (the one the kMetrics scrape
  /// frame renders) — per-instance so tests running several servers in
  /// one process read unpolluted counters.
  obs::MetricsRegistry& metrics() { return server_registry_; }

 private:
  /// One live connection; shared with in-flight jobs so a response can
  /// still be written (or fail harmlessly) after the reader exited. The
  /// fd closes when the last owner drops, never while a job might write.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mutex;
  };

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Connection> connection);
  /// Handles one query frame: decode, parse, async-submit. Immediate
  /// failures (parse error, queue full) answer inline.
  void HandleQuery(const std::shared_ptr<Connection>& connection,
                   const Frame& frame);
  void HandleDelta(const std::shared_ptr<Connection>& connection,
                   const Frame& frame);
  void HandleMetrics(const std::shared_ptr<Connection>& connection,
                     const Frame& frame);
  void HandleStatus(const std::shared_ptr<Connection>& connection,
                    const Frame& frame);
  /// Runs one solver synchronously (called from a submitter thread with
  /// the db lock already held) and fills `out` on success. A non-null
  /// `stats` collects per-query accounting where the solver path
  /// supports it (count/pqe/expect; the multi-evaluation resilience and
  /// Shapley solvers report queue/exec time only).
  Status EvaluateSolver(EvalService& service, const ConjunctiveQuery& query,
                        SolverKind solver, const CancelToken& cancel,
                        QueryResult* out, obs::QueryStats* stats);
  /// Records an outgoing error frame in the last-N ring, the error
  /// counter, and the structured log.
  void RecordError(const Status& status);
  obs::Logger& logger() {
    return options_.logger != nullptr ? *options_.logger
                                      : obs::Logger::Global();
  }
  /// Flags Wait() awake without tearing down (safe from any thread).
  void RequestShutdown();

  Options options_;
  VersionedDatabase db_;
  Database endogenous_;
  Dictionary* dict_;
  AsyncEvalService async_;
  /// Readers (queries) shared, writers (delta apply, traced requests)
  /// unique — see the file comment.
  std::shared_mutex db_mutex_;
  /// Serializes traced requests against each other (the tracer is
  /// process-global state).
  std::mutex trace_mutex_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  /// NowNs at Start() — the kStatus uptime origin.
  uint64_t start_ns_ = 0;
  std::atomic<uint64_t> active_connections_{0};
  /// Per-frame-type request counters (plus error responses), rendered as
  /// the "server" section of kMetricsResponse; `frames_total_` mirrors
  /// their sum for the cheap kStatus read.
  obs::MetricsRegistry server_registry_;
  obs::Counter* frames_query_ = nullptr;
  obs::Counter* frames_delta_ = nullptr;
  obs::Counter* frames_metrics_ = nullptr;
  obs::Counter* frames_status_ = nullptr;
  obs::Counter* frames_ping_ = nullptr;
  obs::Counter* frames_shutdown_ = nullptr;
  obs::Counter* error_frames_ = nullptr;
  obs::Counter* connections_rejected_ = nullptr;
  /// Evaluation wall time per query — the fleet view's p50/p90/p99.
  obs::Histogram* query_ns_ = nullptr;
  std::atomic<uint64_t> frames_total_{0};
  std::atomic<uint64_t> errors_total_{0};
  /// Last-N outgoing error messages, oldest first (kStatus reports them).
  std::mutex errors_mutex_;
  std::deque<std::string> recent_errors_;
  std::mutex lifecycle_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::mutex connections_mutex_;
  /// Weak: a connection dies with its thread; Stop() only needs to
  /// shutdown(2) the fds of the ones still alive to unblock their reads.
  std::vector<std::weak_ptr<Connection>> connections_;
  std::vector<std::jthread> connection_threads_;
  std::jthread accept_thread_;
};

}  // namespace hierarq::net

#endif  // HIERARQ_NET_SERVER_H_
