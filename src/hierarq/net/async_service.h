#ifndef HIERARQ_NET_ASYNC_SERVICE_H_
#define HIERARQ_NET_ASYNC_SERVICE_H_

/// \file async_service.h
/// \brief Async, admission-controlled submission over `EvalService`.
///
/// `EvalService::EvaluateMany` blocks the calling thread until its batch
/// is done — correct for a CLI, wrong for a connection thread that must
/// keep reading frames while a big replay runs. `AsyncEvalService` puts a
/// bounded job queue and a small fleet of *submitter* threads in front:
/// `Submit` enqueues a job and returns immediately; a submitter thread
/// later runs it (the job does the blocking `EvaluateMany` / batch-solver
/// call and invokes whatever completion it captured — writing a response
/// frame, fulfilling a promise). Caller threads never block in
/// evaluation.
///
/// Two server-grade policies live here rather than in every caller:
///
///   * **Admission control.** The queue has a hard depth cap; `Submit`
///     on a full queue returns kResourceExhausted instead of queueing —
///     under overload the server sheds load at the door with a cheap
///     error frame, it does not build an unbounded backlog of work it
///     cannot finish (each rejection is counted in `metrics()`).
///   * **Deadlines from admission.** Each accepted job gets a
///     `CancelToken` armed when it is ACCEPTED, so time spent waiting in
///     the queue counts against the deadline — a request that waited 90%
///     of its budget gets only the remainder to evaluate, and the
///     engine's checkpoints (core/cancel.h) cut the replay off between
///     elimination steps.
///
/// `Shutdown` (also run by the destructor) cancels every queued job's
/// token and drains: jobs still run — their evaluations abort at the
/// first checkpoint — so completions always fire and no response frame
/// is silently dropped.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hierarq/core/cancel.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/service/eval_service.h"

namespace hierarq::net {

class AsyncEvalService {
 public:
  struct Options {
    /// The wrapped evaluation service's configuration.
    EvalService::Options service;
    /// Threads driving blocking evaluations. Each occupies one queued
    /// job at a time; the service's own worker pool parallelizes within
    /// an evaluation, so a few submitters saturate it.
    size_t submit_threads = 2;
    /// Admission cap: jobs waiting (not yet picked up). Submit returns
    /// kResourceExhausted past it.
    size_t max_queue_depth = 64;
    /// Deadline for jobs that do not carry their own (0 = unbounded).
    uint64_t default_deadline_ms = 0;
  };

  /// A unit of async work: runs on a submitter thread with `cancel`
  /// armed; does its own blocking evaluation and completion. Jobs must
  /// not throw (they run on detached-from-caller threads).
  using Job = std::function<void(EvalService& service,
                                 const CancelToken& cancel)>;

  explicit AsyncEvalService(Options options);
  ~AsyncEvalService();

  AsyncEvalService(const AsyncEvalService&) = delete;
  AsyncEvalService& operator=(const AsyncEvalService&) = delete;

  EvalService& service() { return service_; }

  /// Enqueues `job`. Returns OK and runs the job asynchronously, or
  /// kResourceExhausted immediately when the queue is at capacity (the
  /// job is dropped without running — the caller still holds it and can
  /// report the rejection). `deadline_ms` 0 uses the default; the
  /// token's clock starts now, not at job start.
  Status Submit(Job job, uint64_t deadline_ms = 0);

  /// Jobs accepted but not yet picked up by a submitter.
  size_t queue_depth() const;

  /// Age (ns) of the job that has waited longest in the queue right now,
  /// or 0 when the queue is empty — the fleet-view "is this server
  /// falling behind" signal (a deep queue of fresh jobs is throughput; a
  /// shallow queue with an old head is a stall).
  uint64_t oldest_job_age_ns() const;

  /// How long the job currently running on THIS submitter thread waited
  /// in the admission queue. Valid only inside a running job; jobs copy
  /// it into their `QueryStats::queue_wait_ns`. Reading it outside a
  /// submitter thread returns 0. A thread_local accessor (rather than a
  /// Job parameter) keeps every existing Job signature unchanged.
  static uint64_t CurrentJobQueueWaitNs();

  /// Cancels queued jobs' tokens, drains the queue (completions still
  /// fire), joins the submitters. Subsequent Submit calls are rejected.
  void Shutdown();

  /// Async-layer counters: accepted/rejected/completed jobs, queue
  /// depth. The wrapped service's evaluation counters stay in
  /// `service().metrics()`.
  const obs::MetricsRegistry& metrics() const { return registry_; }

 private:
  struct Queued {
    Job job;
    std::shared_ptr<CancelToken> token;
    /// Tracer::NowNs() at admission; queue wait = pickup − enqueue.
    uint64_t enqueue_ns = 0;
  };

  void SubmitterLoop();

  Options options_;
  EvalService service_;
  obs::MetricsRegistry registry_;
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Queued> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> submitters_;  // Last: joined first.
};

}  // namespace hierarq::net

#endif  // HIERARQ_NET_ASYNC_SERVICE_H_
