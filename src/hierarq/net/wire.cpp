#include "hierarq/net/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace hierarq::net {

namespace {

// -- Little-endian byte cursors ---------------------------------------
// Append-to-string writers and a bounds-checked reader; every Decode
// routine funnels through these, so truncation is caught in one place.

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 8);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Sequential reader over a payload; any out-of-bounds read trips
/// `ok_` and every later read no-ops, so decoders check once at the end.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data_[pos_ + i]);
    }
    pos_ += 8;
    return v;
  }

  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string Str() {
    const uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// Decode epilogue: truncated or trailing bytes both reject.
  Status Finish(const char* what) const {
    if (!ok_) {
      return Status::InvalidArgument(std::string(what) +
                                     ": truncated payload");
    }
    if (!AtEnd()) {
      return Status::InvalidArgument(std::string(what) +
                                     ": trailing bytes after payload");
    }
    return Status::OK();
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// -- Minimal JSON -----------------------------------------------------
// The kJson format exists as the interop / A-B baseline, so it is
// deliberately hand-rolled like the rest of the protocol: a writer for
// the flat objects we emit and a strict recursive-descent reader for
// the same shapes. Rejects (Status) on anything malformed.

void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[32];
  // %.17g round-trips every finite double exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

/// A parsed JSON value — only what the protocol's flat objects need.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    HIERARQ_RETURN_NOT_OK(ParseValue(&v, /*depth=*/0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 32) {
      return Err("nesting too deep");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Err("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseLiteralBool(out);
    if (c == 'n') return ParseLiteralNull(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      HIERARQ_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Err("expected ':'");
      }
      ++pos_;
      JsonValue value;
      HIERARQ_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Err("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      HIERARQ_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Err("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (text_.size() - pos_ < 4) {
            return Err("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad \\u escape");
          }
          // We only ever emit \u00xx for control bytes; anything in the
          // BMP decodes to UTF-8 here for completeness.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xc0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            *out += static_cast<char>(0xe0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseLiteralBool(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    return Err("bad literal");
  }

  Status ParseLiteralNull(JsonValue* out) {
    if (text_.substr(pos_, 4) == "null") {
      out->kind = JsonValue::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Err("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Err("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Err("bad number '" + token + "'");
    }
    out->kind = JsonValue::kNumber;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Fetches a required field of a given kind from a decoded object.
Result<const JsonValue*> Field(const JsonValue& doc, std::string_view key,
                               JsonValue::Kind kind) {
  if (doc.kind != JsonValue::kObject) {
    return Status::InvalidArgument("json payload is not an object");
  }
  const JsonValue* v = doc.Find(key);
  if (v == nullptr || v->kind != kind) {
    return Status::InvalidArgument("json payload missing field '" +
                                   std::string(key) + "'");
  }
  return v;
}

/// u64 JSON codec, decode side. Encoders emit u64s as decimal STRINGS
/// ("18446744073709551615"): a JSON number routes through double in this
/// parser (and most others) and silently corrupts values past 2^53 —
/// resilience's infinity sentinel is exactly such a value. A plain
/// number is still accepted (hand-written clients) when it is a
/// non-negative integer small enough to be exact in a double.
Result<uint64_t> U64Field(const JsonValue& doc, std::string_view key) {
  if (doc.kind != JsonValue::kObject) {
    return Status::InvalidArgument("json payload is not an object");
  }
  const JsonValue* v = doc.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("json payload missing field '" +
                                   std::string(key) + "'");
  }
  if (v->kind == JsonValue::kString) {
    if (v->string.empty()) {
      return Status::InvalidArgument("json field '" + std::string(key) +
                                     "': empty u64 string");
    }
    uint64_t out = 0;
    for (const char c : v->string) {
      if (c < '0' || c > '9' ||
          out > (~uint64_t{0} - static_cast<uint64_t>(c - '0')) / 10) {
        return Status::InvalidArgument("json field '" + std::string(key) +
                                       "': not a u64: '" + v->string + "'");
      }
      out = out * 10 + static_cast<uint64_t>(c - '0');
    }
    return out;
  }
  if (v->kind == JsonValue::kNumber) {
    const double n = v->number;
    if (n < 0 || n > 9007199254740992.0 ||
        n != static_cast<double>(static_cast<uint64_t>(n))) {
      return Status::InvalidArgument(
          "json field '" + std::string(key) +
          "': number is not an exactly-representable u64 (send it as a "
          "string)");
    }
    return static_cast<uint64_t>(n);
  }
  return Status::InvalidArgument("json field '" + std::string(key) +
                                 "' must be a string or number");
}

// -- QueryStats section ------------------------------------------------
// The flag-gated trailing block of kResultFrame. Field order is the
// declaration order in obs/query_stats.h; both sides hardcode it, so a
// new field means a new flag bit (or a versioned section), never a
// silent layout change.

void PutStatsNative(std::string* out, const obs::QueryStats& stats) {
  PutU64(out, stats.rule1_rows_scanned);
  PutU64(out, stats.rule1_rows_emitted);
  PutU64(out, stats.rule2_rows_scanned);
  PutU64(out, stats.rule2_rows_emitted);
  PutU64(out, stats.steps_total);
  PutU64(out, stats.steps_serial);
  PutU64(out, stats.steps_parallel);
  PutU64(out, stats.cancel_checkpoints);
  PutU64(out, stats.queue_wait_ns);
  PutU64(out, stats.exec_ns);
  *out += static_cast<char>(stats.plan_cache_hit ? 1 : 0);
}

void ReadStatsNative(Cursor* cursor, obs::QueryStats* stats) {
  stats->rule1_rows_scanned = cursor->U64();
  stats->rule1_rows_emitted = cursor->U64();
  stats->rule2_rows_scanned = cursor->U64();
  stats->rule2_rows_emitted = cursor->U64();
  stats->steps_total = cursor->U64();
  stats->steps_serial = cursor->U64();
  stats->steps_parallel = cursor->U64();
  stats->cancel_checkpoints = cursor->U64();
  stats->queue_wait_ns = cursor->U64();
  stats->exec_ns = cursor->U64();
  stats->plan_cache_hit = cursor->U8() != 0;
}

void AppendStatsJson(std::string* out, const obs::QueryStats& stats) {
  // u64s as decimal strings, like every u64 in this protocol (see
  // U64Field): ns totals overflow a JSON double's 2^53 integer range.
  const auto field = [out](const char* key, uint64_t value) {
    *out += '"';
    *out += key;
    *out += "\":\"";
    *out += std::to_string(value);
    *out += "\",";
  };
  *out += '{';
  field("rule1_rows_scanned", stats.rule1_rows_scanned);
  field("rule1_rows_emitted", stats.rule1_rows_emitted);
  field("rule2_rows_scanned", stats.rule2_rows_scanned);
  field("rule2_rows_emitted", stats.rule2_rows_emitted);
  field("steps", stats.steps_total);
  field("serial_steps", stats.steps_serial);
  field("parallel_steps", stats.steps_parallel);
  field("cancel_checkpoints", stats.cancel_checkpoints);
  field("queue_wait_ns", stats.queue_wait_ns);
  field("exec_ns", stats.exec_ns);
  *out += "\"plan_cache_hit\":";
  *out += stats.plan_cache_hit ? "true" : "false";
  *out += '}';
}

Status ParseStatsJson(const JsonValue& doc, obs::QueryStats* stats) {
  HIERARQ_ASSIGN_OR_RETURN(stats->rule1_rows_scanned,
                           U64Field(doc, "rule1_rows_scanned"));
  HIERARQ_ASSIGN_OR_RETURN(stats->rule1_rows_emitted,
                           U64Field(doc, "rule1_rows_emitted"));
  HIERARQ_ASSIGN_OR_RETURN(stats->rule2_rows_scanned,
                           U64Field(doc, "rule2_rows_scanned"));
  HIERARQ_ASSIGN_OR_RETURN(stats->rule2_rows_emitted,
                           U64Field(doc, "rule2_rows_emitted"));
  HIERARQ_ASSIGN_OR_RETURN(stats->steps_total, U64Field(doc, "steps"));
  HIERARQ_ASSIGN_OR_RETURN(stats->steps_serial,
                           U64Field(doc, "serial_steps"));
  HIERARQ_ASSIGN_OR_RETURN(stats->steps_parallel,
                           U64Field(doc, "parallel_steps"));
  HIERARQ_ASSIGN_OR_RETURN(stats->cancel_checkpoints,
                           U64Field(doc, "cancel_checkpoints"));
  HIERARQ_ASSIGN_OR_RETURN(stats->queue_wait_ns,
                           U64Field(doc, "queue_wait_ns"));
  HIERARQ_ASSIGN_OR_RETURN(stats->exec_ns, U64Field(doc, "exec_ns"));
  if (const JsonValue* hit = doc.Find("plan_cache_hit");
      hit != nullptr && hit->kind == JsonValue::kBool) {
    stats->plan_cache_hit = hit->boolean;
  }
  return Status::OK();
}

}  // namespace

const char* SolverKindName(SolverKind solver) {
  switch (solver) {
    case SolverKind::kCount:
      return "count";
    case SolverKind::kPqe:
      return "pqe";
    case SolverKind::kExpect:
      return "expect";
    case SolverKind::kResilience:
      return "resilience";
    case SolverKind::kShapley:
      return "shapley";
  }
  return "unknown";
}

Result<SolverKind> ParseSolverKind(std::string_view name) {
  if (name == "count") return SolverKind::kCount;
  if (name == "pqe") return SolverKind::kPqe;
  if (name == "expect") return SolverKind::kExpect;
  if (name == "resilience") return SolverKind::kResilience;
  if (name == "shapley") return SolverKind::kShapley;
  return Status::InvalidArgument("unknown solver '" + std::string(name) +
                                 "' (expected count, pqe, expect, "
                                 "resilience or shapley)");
}

void EncodeFrameHeader(const FrameHeader& header,
                       char out[kFrameHeaderSize]) {
  std::string buf;
  buf.reserve(kFrameHeaderSize);
  PutU32(&buf, header.payload_len);
  buf += static_cast<char>(header.type);
  buf += static_cast<char>(header.format);
  buf += static_cast<char>(header.flags & 0xff);
  buf += static_cast<char>((header.flags >> 8) & 0xff);
  PutU64(&buf, header.request_id);
  std::memcpy(out, buf.data(), kFrameHeaderSize);
}

Result<FrameHeader> DecodeFrameHeader(const char in[kFrameHeaderSize]) {
  Cursor cursor(std::string_view(in, kFrameHeaderSize));
  FrameHeader header;
  header.payload_len = cursor.U32();
  const uint8_t type = cursor.U8();
  const uint8_t format = cursor.U8();
  const uint8_t flags_lo = cursor.U8();
  const uint8_t flags_hi = cursor.U8();
  header.flags = static_cast<uint16_t>(flags_lo | (flags_hi << 8));
  header.request_id = cursor.U64();
  // A garbage header is the first line of defense: validate every
  // enum-ish field and the length bound BEFORE anyone allocates or
  // dispatches on it.
  if (type < static_cast<uint8_t>(FrameType::kQueryRequest) ||
      type > static_cast<uint8_t>(FrameType::kStatusResponse)) {
    return Status::InvalidArgument("bad frame: unknown type " +
                                   std::to_string(type));
  }
  if (format > static_cast<uint8_t>(WireFormat::kJson)) {
    return Status::InvalidArgument("bad frame: unknown format " +
                                   std::to_string(format));
  }
  if (header.payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "bad frame: payload length " + std::to_string(header.payload_len) +
        " exceeds the " + std::to_string(kMaxPayloadBytes) + "-byte cap");
  }
  header.type = static_cast<FrameType>(type);
  header.format = static_cast<WireFormat>(format);
  return header;
}

std::string EncodeQueryRequest(const QueryRequest& request,
                               WireFormat format) {
  std::string out;
  if (format == WireFormat::kNative) {
    out += static_cast<char>(request.solver);
    PutU64(&out, request.deadline_ms);
    PutStr(&out, request.query);
    // Trailing optional section, written only when present so a request
    // without trace context is byte-identical to the old layout.
    if (!request.trace_id.empty()) {
      PutStr(&out, request.trace_id);
    }
    return out;
  }
  out += "{\"solver\":";
  AppendJsonString(&out, SolverKindName(request.solver));
  out += ",\"deadline_ms\":" + std::to_string(request.deadline_ms);
  out += ",\"query\":";
  AppendJsonString(&out, request.query);
  if (!request.trace_id.empty()) {
    out += ",\"trace_id\":";
    AppendJsonString(&out, request.trace_id);
  }
  out += "}";
  return out;
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload,
                                        WireFormat format) {
  QueryRequest request;
  if (format == WireFormat::kNative) {
    Cursor cursor(payload);
    const uint8_t solver = cursor.U8();
    request.deadline_ms = cursor.U64();
    request.query = cursor.Str();
    // Old-style frames end here; new-style ones carry trace context.
    if (cursor.ok() && !cursor.AtEnd()) {
      request.trace_id = cursor.Str();
    }
    HIERARQ_RETURN_NOT_OK(cursor.Finish("query request"));
    if (solver > static_cast<uint8_t>(SolverKind::kShapley)) {
      return Status::InvalidArgument("query request: unknown solver tag " +
                                     std::to_string(solver));
    }
    request.solver = static_cast<SolverKind>(solver);
    return request;
  }
  HIERARQ_ASSIGN_OR_RETURN(JsonValue doc, JsonParser(payload).Parse());
  HIERARQ_ASSIGN_OR_RETURN(
      const JsonValue* solver, Field(doc, "solver", JsonValue::kString));
  HIERARQ_ASSIGN_OR_RETURN(request.solver,
                           ParseSolverKind(solver->string));
  HIERARQ_ASSIGN_OR_RETURN(
      const JsonValue* query, Field(doc, "query", JsonValue::kString));
  request.query = query->string;
  if (const JsonValue* deadline = doc.Find("deadline_ms");
      deadline != nullptr && deadline->kind == JsonValue::kNumber) {
    request.deadline_ms = static_cast<uint64_t>(deadline->number);
  }
  if (const JsonValue* trace_id = doc.Find("trace_id");
      trace_id != nullptr && trace_id->kind == JsonValue::kString) {
    request.trace_id = trace_id->string;
  }
  return request;
}

std::string EncodeQueryResult(const QueryResult& result, WireFormat format,
                              bool with_stats, bool with_trace) {
  std::string out;
  if (format == WireFormat::kNative) {
    out += static_cast<char>(result.solver);
    switch (result.solver) {
      case SolverKind::kCount:
      case SolverKind::kResilience:
        PutU64(&out, result.count);
        break;
      case SolverKind::kPqe:
      case SolverKind::kExpect:
        PutF64(&out, result.number);
        break;
      case SolverKind::kShapley:
        PutU32(&out, static_cast<uint32_t>(result.shapley.size()));
        for (const ShapleyEntry& entry : result.shapley) {
          PutStr(&out, entry.fact);
          PutStr(&out, entry.fraction);
          PutF64(&out, entry.value);
        }
        break;
    }
    if (with_stats) {
      PutStatsNative(&out, result.stats);
    }
    if (with_trace) {
      PutStr(&out, result.trace_json);
    }
    return out;
  }
  out += "{\"solver\":";
  AppendJsonString(&out, SolverKindName(result.solver));
  switch (result.solver) {
    case SolverKind::kCount:
    case SolverKind::kResilience:
      // String, not number: see U64Field — counts use the full u64 range
      // (resilience infinity is ~0), past what a JSON double carries.
      out += ",\"value\":\"" + std::to_string(result.count) + "\"";
      break;
    case SolverKind::kPqe:
    case SolverKind::kExpect:
      out += ",\"value\":";
      AppendJsonDouble(&out, result.number);
      break;
    case SolverKind::kShapley:
      out += ",\"shapley\":[";
      for (size_t i = 0; i < result.shapley.size(); ++i) {
        if (i > 0) out += ",";
        out += "{\"fact\":";
        AppendJsonString(&out, result.shapley[i].fact);
        out += ",\"fraction\":";
        AppendJsonString(&out, result.shapley[i].fraction);
        out += ",\"value\":";
        AppendJsonDouble(&out, result.shapley[i].value);
        out += "}";
      }
      out += "]";
      break;
  }
  if (with_stats) {
    out += ",\"stats\":";
    AppendStatsJson(&out, result.stats);
  }
  if (with_trace) {
    out += ",\"trace\":";
    AppendJsonString(&out, result.trace_json);
  }
  out += "}";
  return out;
}

Result<QueryResult> DecodeQueryResult(std::string_view payload,
                                      WireFormat format, bool with_stats,
                                      bool with_trace) {
  QueryResult result;
  if (format == WireFormat::kNative) {
    Cursor cursor(payload);
    const uint8_t solver = cursor.U8();
    if (solver > static_cast<uint8_t>(SolverKind::kShapley)) {
      return Status::InvalidArgument("result: unknown solver tag " +
                                     std::to_string(solver));
    }
    result.solver = static_cast<SolverKind>(solver);
    switch (result.solver) {
      case SolverKind::kCount:
      case SolverKind::kResilience:
        result.count = cursor.U64();
        break;
      case SolverKind::kPqe:
      case SolverKind::kExpect:
        result.number = cursor.F64();
        break;
      case SolverKind::kShapley: {
        const uint32_t n = cursor.U32();
        // The count is attacker-controlled until Finish() validates the
        // stream; reserve nothing and let truncation trip the cursor.
        for (uint32_t i = 0; i < n && cursor.ok(); ++i) {
          ShapleyEntry entry;
          entry.fact = cursor.Str();
          entry.fraction = cursor.Str();
          entry.value = cursor.F64();
          result.shapley.push_back(std::move(entry));
        }
        break;
      }
    }
    if (with_stats) {
      ReadStatsNative(&cursor, &result.stats);
    }
    if (with_trace) {
      result.trace_json = cursor.Str();
    }
    HIERARQ_RETURN_NOT_OK(cursor.Finish("result"));
    return result;
  }
  HIERARQ_ASSIGN_OR_RETURN(JsonValue doc, JsonParser(payload).Parse());
  HIERARQ_ASSIGN_OR_RETURN(
      const JsonValue* solver, Field(doc, "solver", JsonValue::kString));
  HIERARQ_ASSIGN_OR_RETURN(result.solver, ParseSolverKind(solver->string));
  switch (result.solver) {
    case SolverKind::kCount:
    case SolverKind::kResilience: {
      HIERARQ_ASSIGN_OR_RETURN(result.count, U64Field(doc, "value"));
      break;
    }
    case SolverKind::kPqe:
    case SolverKind::kExpect: {
      HIERARQ_ASSIGN_OR_RETURN(
          const JsonValue* value, Field(doc, "value", JsonValue::kNumber));
      result.number = value->number;
      break;
    }
    case SolverKind::kShapley: {
      HIERARQ_ASSIGN_OR_RETURN(
          const JsonValue* list, Field(doc, "shapley", JsonValue::kArray));
      for (const JsonValue& item : list->array) {
        ShapleyEntry entry;
        HIERARQ_ASSIGN_OR_RETURN(
            const JsonValue* fact, Field(item, "fact", JsonValue::kString));
        HIERARQ_ASSIGN_OR_RETURN(
            const JsonValue* fraction,
            Field(item, "fraction", JsonValue::kString));
        HIERARQ_ASSIGN_OR_RETURN(
            const JsonValue* value,
            Field(item, "value", JsonValue::kNumber));
        entry.fact = fact->string;
        entry.fraction = fraction->string;
        entry.value = value->number;
        result.shapley.push_back(std::move(entry));
      }
      break;
    }
  }
  if (with_stats) {
    HIERARQ_ASSIGN_OR_RETURN(
        const JsonValue* stats, Field(doc, "stats", JsonValue::kObject));
    HIERARQ_RETURN_NOT_OK(ParseStatsJson(*stats, &result.stats));
  }
  if (with_trace) {
    HIERARQ_ASSIGN_OR_RETURN(
        const JsonValue* trace, Field(doc, "trace", JsonValue::kString));
    result.trace_json = trace->string;
  }
  return result;
}

std::string EncodeError(const Status& status, WireFormat format) {
  std::string out;
  if (format == WireFormat::kNative) {
    PutU32(&out, static_cast<uint32_t>(status.code()));
    PutStr(&out, status.message());
    return out;
  }
  out += "{\"code\":" + std::to_string(static_cast<int>(status.code()));
  out += ",\"code_name\":";
  AppendJsonString(&out, StatusCodeName(status.code()));
  out += ",\"message\":";
  AppendJsonString(&out, status.message());
  out += "}";
  return out;
}

Result<ErrorPayload> DecodeError(std::string_view payload,
                                 WireFormat format) {
  ErrorPayload error;
  if (format == WireFormat::kNative) {
    Cursor cursor(payload);
    const uint32_t code = cursor.U32();
    error.message = cursor.Str();
    HIERARQ_RETURN_NOT_OK(cursor.Finish("error frame"));
    if (code > static_cast<uint32_t>(StatusCode::kResourceExhausted)) {
      return Status::InvalidArgument("error frame: unknown status code " +
                                     std::to_string(code));
    }
    error.code = static_cast<StatusCode>(code);
    return error;
  }
  HIERARQ_ASSIGN_OR_RETURN(JsonValue doc, JsonParser(payload).Parse());
  HIERARQ_ASSIGN_OR_RETURN(const JsonValue* code,
                           Field(doc, "code", JsonValue::kNumber));
  HIERARQ_ASSIGN_OR_RETURN(const JsonValue* message,
                           Field(doc, "message", JsonValue::kString));
  const int code_int = static_cast<int>(code->number);
  if (code_int < 0 ||
      code_int > static_cast<int>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("error frame: unknown status code " +
                                   std::to_string(code_int));
  }
  error.code = static_cast<StatusCode>(code_int);
  error.message = message->string;
  return error;
}

std::string EncodeDeltaAck(const DeltaAck& ack, WireFormat format) {
  std::string out;
  if (format == WireFormat::kNative) {
    PutU64(&out, ack.generation);
    PutU64(&out, ack.num_facts);
    return out;
  }
  out += "{\"generation\":\"" + std::to_string(ack.generation) + "\"";
  out += ",\"num_facts\":\"" + std::to_string(ack.num_facts) + "\"";
  out += "}";
  return out;
}

Result<DeltaAck> DecodeDeltaAck(std::string_view payload,
                                WireFormat format) {
  DeltaAck ack;
  if (format == WireFormat::kNative) {
    Cursor cursor(payload);
    ack.generation = cursor.U64();
    ack.num_facts = cursor.U64();
    HIERARQ_RETURN_NOT_OK(cursor.Finish("delta ack"));
    return ack;
  }
  HIERARQ_ASSIGN_OR_RETURN(JsonValue doc, JsonParser(payload).Parse());
  HIERARQ_ASSIGN_OR_RETURN(ack.generation, U64Field(doc, "generation"));
  HIERARQ_ASSIGN_OR_RETURN(ack.num_facts, U64Field(doc, "num_facts"));
  return ack;
}

std::string EncodeStatusPayload(const StatusPayload& status,
                                WireFormat format) {
  std::string out;
  if (format == WireFormat::kNative) {
    PutU64(&out, status.uptime_ns);
    PutU64(&out, status.queue_depth);
    PutU64(&out, status.oldest_job_age_ns);
    PutU64(&out, status.active_connections);
    PutU64(&out, status.requests_total);
    PutU64(&out, status.errors_total);
    PutU32(&out, static_cast<uint32_t>(status.recent_errors.size()));
    for (const std::string& error : status.recent_errors) {
      PutStr(&out, error);
    }
    return out;
  }
  out += "{\"uptime_ns\":\"" + std::to_string(status.uptime_ns) + "\"";
  out += ",\"queue_depth\":\"" + std::to_string(status.queue_depth) + "\"";
  out += ",\"oldest_job_age_ns\":\"" +
         std::to_string(status.oldest_job_age_ns) + "\"";
  out += ",\"active_connections\":\"" +
         std::to_string(status.active_connections) + "\"";
  out += ",\"requests_total\":\"" + std::to_string(status.requests_total) +
         "\"";
  out += ",\"errors_total\":\"" + std::to_string(status.errors_total) + "\"";
  out += ",\"recent_errors\":[";
  for (size_t i = 0; i < status.recent_errors.size(); ++i) {
    if (i > 0) out += ",";
    AppendJsonString(&out, status.recent_errors[i]);
  }
  out += "]}";
  return out;
}

Result<StatusPayload> DecodeStatusPayload(std::string_view payload,
                                          WireFormat format) {
  StatusPayload status;
  if (format == WireFormat::kNative) {
    Cursor cursor(payload);
    status.uptime_ns = cursor.U64();
    status.queue_depth = cursor.U64();
    status.oldest_job_age_ns = cursor.U64();
    status.active_connections = cursor.U64();
    status.requests_total = cursor.U64();
    status.errors_total = cursor.U64();
    const uint32_t n = cursor.U32();
    // Attacker-controlled count: no reserve, truncation trips the cursor.
    for (uint32_t i = 0; i < n && cursor.ok(); ++i) {
      status.recent_errors.push_back(cursor.Str());
    }
    HIERARQ_RETURN_NOT_OK(cursor.Finish("status"));
    return status;
  }
  HIERARQ_ASSIGN_OR_RETURN(JsonValue doc, JsonParser(payload).Parse());
  HIERARQ_ASSIGN_OR_RETURN(status.uptime_ns, U64Field(doc, "uptime_ns"));
  HIERARQ_ASSIGN_OR_RETURN(status.queue_depth,
                           U64Field(doc, "queue_depth"));
  HIERARQ_ASSIGN_OR_RETURN(status.oldest_job_age_ns,
                           U64Field(doc, "oldest_job_age_ns"));
  HIERARQ_ASSIGN_OR_RETURN(status.active_connections,
                           U64Field(doc, "active_connections"));
  HIERARQ_ASSIGN_OR_RETURN(status.requests_total,
                           U64Field(doc, "requests_total"));
  HIERARQ_ASSIGN_OR_RETURN(status.errors_total,
                           U64Field(doc, "errors_total"));
  HIERARQ_ASSIGN_OR_RETURN(
      const JsonValue* errors,
      Field(doc, "recent_errors", JsonValue::kArray));
  for (const JsonValue& item : errors->array) {
    if (item.kind != JsonValue::kString) {
      return Status::InvalidArgument(
          "status: recent_errors entries must be strings");
    }
    status.recent_errors.push_back(item.string);
  }
  return status;
}

namespace {

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal(std::string("socket write failed: ") +
                              std::strerror(errno));
    }
    data += written;
    n -= static_cast<size_t>(written);
  }
  return Status::OK();
}

/// Reads exactly `n` bytes. `eof_ok` distinguishes "peer closed at a
/// frame boundary" (clean, kNotFound) from "closed mid-frame"
/// (truncation, kInvalidArgument).
Status ReadAll(int fd, char* data, size_t n, bool eof_ok) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal(std::string("socket read failed: ") +
                              std::strerror(errno));
    }
    if (r == 0) {
      if (eof_ok && got == 0) {
        return Status::NotFound("connection closed");
      }
      return Status::InvalidArgument("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const FrameHeader& header,
                  std::string_view payload) {
  // One buffered write per frame: header+payload coalesce into a single
  // syscall for small frames, which is most of the protocol.
  std::string buf;
  buf.resize(kFrameHeaderSize);
  FrameHeader h = header;
  h.payload_len = static_cast<uint32_t>(payload.size());
  EncodeFrameHeader(h, buf.data());
  buf.append(payload);
  return WriteAll(fd, buf.data(), buf.size());
}

Status WriteFrame(int fd, FrameType type, WireFormat format, uint16_t flags,
                  uint64_t request_id, std::string_view payload) {
  FrameHeader header;
  header.type = type;
  header.format = format;
  header.flags = flags;
  header.request_id = request_id;
  return WriteFrame(fd, header, payload);
}

Result<Frame> ReadFrame(int fd) {
  char raw[kFrameHeaderSize];
  HIERARQ_RETURN_NOT_OK(ReadAll(fd, raw, kFrameHeaderSize, /*eof_ok=*/true));
  Frame frame;
  HIERARQ_ASSIGN_OR_RETURN(frame.header, DecodeFrameHeader(raw));
  frame.payload.resize(frame.header.payload_len);
  if (frame.header.payload_len > 0) {
    HIERARQ_RETURN_NOT_OK(ReadAll(fd, frame.payload.data(),
                                  frame.header.payload_len,
                                  /*eof_ok=*/false));
  }
  return frame;
}

}  // namespace hierarq::net
