#ifndef HIERARQ_NET_WIRE_H_
#define HIERARQ_NET_WIRE_H_

/// \file wire.h
/// \brief The hierarq wire protocol: length-prefixed binary frames.
///
/// Everything that crosses a hierarq socket is one frame:
///
///     ┌────────────┬──────┬────────┬─────────┬──────────────┬─────────┐
///     │ u32 length │ u8   │ u8     │ u16     │ u64          │ payload │
///     │ of payload │ type │ format │ flags   │ request id   │ bytes   │
///     └────────────┴──────┴────────┴─────────┴──────────────┴─────────┘
///       little-endian, 16-byte header, payload length ≤ 16 MiB
///
/// The request id is chosen by the client and echoed verbatim on every
/// response frame, so a client may pipeline requests and match answers
/// out of order. `format` selects between two payload encodings of the
/// SAME logical messages — `kNative` (the hand-rolled binary layout
/// below) and `kJson` (a flat JSON object) — so `bench/bench_server.cpp`
/// can A/B the framing cost in the thesis-microbench style; servers
/// answer in the format they were asked in. `flags` bit 0 requests
/// (on a query) / announces (on a result) per-request trace capture;
/// bit 1 does the same for per-request resource accounting (QueryStats).
///
/// Native payload layouts (all integers little-endian, doubles as their
/// IEEE-754 bit pattern in a u64):
///
///   kQueryRequest    u8 solver | u64 deadline_ms | u32 n | n query bytes
///                      [| str trace_id]  (optional trailing section: the
///                      client-minted trace context; absent on old-style
///                      frames, which decode identically)
///   kResultFrame     u8 solver | value... [| stats][| u32 n | n trace bytes]
///                      count/resilience: u64
///                      pqe/expect:       f64
///                      shapley:          u32 k | k × (str fact,
///                                        str fraction, f64 value)
///                      (str = u32 length + bytes; the trailing stats
///                       section — 10 × u64 | u8 plan_cache_hit, field
///                       order of obs::QueryStats — is present iff flags
///                       bit 1 is set; the trace section iff bit 0 is
///                       set; stats precede trace)
///   kErrorFrame      u32 status code | str message
///   kDeltaBatch      the textual update grammar, verbatim
///                    (incremental/delta_text.h — one line, ops ';'-split,
///                    applied atomically server-side)
///   kDeltaAck        u64 generation | u64 num_facts
///   kMetricsRequest  empty (format picks text vs JSON rendering)
///   kMetricsResponse rendered registry dump, verbatim
///   kPing/kPong      empty
///   kShutdown        empty (server stops accepting and exits its loop)
///   kStatusRequest   empty
///   kStatusResponse  u64 uptime_ns | u64 queue_depth |
///                    u64 oldest_job_age_ns | u64 active_connections |
///                    u64 requests_total | u64 errors_total |
///                    u32 n | n × str recent error (oldest first)
///
/// Robustness contract: a reader REJECTS rather than trusts — oversized
/// lengths, unknown frame types, and truncated payloads all produce a
/// clean `Status` (the server answers with kErrorFrame and closes the
/// connection, since a desynchronized length-prefixed stream cannot be
/// re-synchronized). Nothing in this layer aborts on malformed input.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hierarq/obs/query_stats.h"
#include "hierarq/util/result.h"
#include "hierarq/util/status.h"

namespace hierarq::net {

enum class FrameType : uint8_t {
  kQueryRequest = 1,
  kResultFrame = 2,
  kErrorFrame = 3,
  kDeltaBatch = 4,
  kDeltaAck = 5,
  kMetricsRequest = 6,
  kMetricsResponse = 7,
  kPing = 8,
  kPong = 9,
  kShutdown = 10,
  kStatusRequest = 11,   ///< Fleet view: "how is this server doing".
  kStatusResponse = 12,  ///< StatusPayload in the request's format.
};

enum class WireFormat : uint8_t {
  kNative = 0,  ///< Hand-rolled binary layout (the fast path).
  kJson = 1,    ///< Flat JSON text (the interop / A-B baseline).
};

enum class SolverKind : uint8_t {
  kCount = 0,
  kPqe = 1,
  kExpect = 2,
  kResilience = 3,
  kShapley = 4,
};

/// Returns the CLI-facing solver name ("count", "pqe", ...).
const char* SolverKindName(SolverKind solver);
/// Inverse of SolverKindName; fails on unknown names.
Result<SolverKind> ParseSolverKind(std::string_view name);

/// Frame flags (bitmask in the header's u16).
inline constexpr uint16_t kFlagTrace = 1u << 0;
/// On a query: "account this request"; on a result: "a QueryStats
/// section follows the value". Old clients never set the bit and old
/// decoders never see the section — compatibility both ways.
inline constexpr uint16_t kFlagStats = 1u << 1;

inline constexpr size_t kFrameHeaderSize = 16;
/// Upper bound a reader enforces BEFORE allocating: a garbage or hostile
/// length prefix must not become a 4 GiB allocation.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

struct FrameHeader {
  uint32_t payload_len = 0;
  FrameType type = FrameType::kPing;
  WireFormat format = WireFormat::kNative;
  uint16_t flags = 0;
  /// Echoed request correlator. Clients allocate ids from 1 upward;
  /// id 0 is reserved for CONNECTION-scoped server messages — an error
  /// frame with request_id 0 concerns the connection itself (e.g. the
  /// server's connection cap rejected it before any request existed)
  /// and clients must surface it rather than skip it as "not mine".
  uint64_t request_id = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

/// Serializes `header` into exactly kFrameHeaderSize bytes.
void EncodeFrameHeader(const FrameHeader& header,
                       char out[kFrameHeaderSize]);
/// Parses a header, validating the type tag and the payload bound.
Result<FrameHeader> DecodeFrameHeader(const char in[kFrameHeaderSize]);

// -- Logical payloads -------------------------------------------------

struct QueryRequest {
  SolverKind solver = SolverKind::kCount;
  /// 0 = use the server's default deadline.
  uint64_t deadline_ms = 0;
  std::string query;
  /// Client-minted trace context, e.g. "c3a9f2d41b0e6c77" — the server
  /// tags its spans and log lines with it so client and server sides of
  /// one request stitch into one trace. Empty = none. Rides the payload
  /// as an optional trailing section: old-style frames without it decode
  /// to an empty id, old decoders given a frame WITH it reject cleanly
  /// (trailing bytes) rather than misparse.
  std::string trace_id;
};

struct ShapleyEntry {
  std::string fact;      ///< Rendered fact, e.g. "R(1,2)".
  std::string fraction;  ///< Exact value, e.g. "1/3".
  double value = 0.0;    ///< The fraction as a double, for display.
};

struct QueryResult {
  SolverKind solver = SolverKind::kCount;
  uint64_t count = 0;   ///< count / resilience (exact).
  double number = 0.0;  ///< pqe / expect.
  std::vector<ShapleyEntry> shapley;
  /// Per-request resource accounting; meaningful iff the result frame's
  /// kFlagStats is set (the section rides the wire only then).
  obs::QueryStats stats;
  /// Chrome trace-event JSON captured for this request; non-empty iff
  /// the result frame's kFlagTrace is set.
  std::string trace_json;
};

struct ErrorPayload {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

struct DeltaAck {
  uint64_t generation = 0;
  uint64_t num_facts = 0;
};

/// The kStatusResponse payload — one server's health at a glance, cheap
/// enough to poll every second (`tools/hierarq_top.py` does).
struct StatusPayload {
  uint64_t uptime_ns = 0;           ///< Since the server started serving.
  uint64_t queue_depth = 0;         ///< Admission queue: jobs waiting.
  uint64_t oldest_job_age_ns = 0;   ///< Head-of-queue wait; 0 when empty.
  uint64_t active_connections = 0;  ///< Connection threads alive now.
  uint64_t requests_total = 0;      ///< Frames served since start.
  uint64_t errors_total = 0;        ///< Error frames sent since start.
  /// Last-N error messages, oldest first (the server keeps a small ring;
  /// N is the server's choice, readers take what they get).
  std::vector<std::string> recent_errors;
};

// -- Payload codecs (both formats) ------------------------------------
// Encode never fails; Decode returns a Status on truncated, trailing or
// malformed bytes — the reject-don't-trust half of the contract.

std::string EncodeQueryRequest(const QueryRequest& request,
                               WireFormat format);
Result<QueryRequest> DecodeQueryRequest(std::string_view payload,
                                        WireFormat format);

/// `with_stats` / `with_trace` mirror the frame's kFlagStats/kFlagTrace
/// bits: they govern whether the optional trailing sections are written
/// (encode) or expected (decode). Callers pass the bits they put in (or
/// read from) the header, so frame and payload can never disagree.
std::string EncodeQueryResult(const QueryResult& result, WireFormat format,
                              bool with_stats, bool with_trace);
Result<QueryResult> DecodeQueryResult(std::string_view payload,
                                      WireFormat format, bool with_stats,
                                      bool with_trace);

std::string EncodeError(const Status& status, WireFormat format);
Result<ErrorPayload> DecodeError(std::string_view payload,
                                 WireFormat format);

std::string EncodeDeltaAck(const DeltaAck& ack, WireFormat format);
Result<DeltaAck> DecodeDeltaAck(std::string_view payload,
                                WireFormat format);

std::string EncodeStatusPayload(const StatusPayload& status,
                                WireFormat format);
Result<StatusPayload> DecodeStatusPayload(std::string_view payload,
                                          WireFormat format);

// -- Framed socket I/O -------------------------------------------------

/// Writes header + payload to `fd`, looping over partial writes.
Status WriteFrame(int fd, const FrameHeader& header,
                  std::string_view payload);
/// Convenience: fills in payload_len from `payload`.
Status WriteFrame(int fd, FrameType type, WireFormat format, uint16_t flags,
                  uint64_t request_id, std::string_view payload);

/// Reads one frame. kNotFound signals clean EOF at a frame boundary
/// (peer closed); any other error is a protocol violation or I/O
/// failure, after which the stream must be closed (the reader cannot
/// re-synchronize a length-prefixed stream).
Result<Frame> ReadFrame(int fd);

}  // namespace hierarq::net

#endif  // HIERARQ_NET_WIRE_H_
