#include "hierarq/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <sstream>
#include <utility>

#include "hierarq/algebra/prob_monoid.h"
#include "hierarq/algebra/resilience_monoid.h"
#include "hierarq/algebra/semirings.h"
#include "hierarq/core/expectation.h"
#include "hierarq/incremental/delta_text.h"
#include "hierarq/obs/explain.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/query_stats.h"
#include "hierarq/obs/trace.h"
#include "hierarq/persist/persistor.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/parser.h"
#include "hierarq/service/batch_solvers.h"

namespace hierarq::net {

namespace {

std::string RenderFact(const Fact& fact, const Dictionary& dict) {
  std::string out = fact.relation + "(";
  for (size_t i = 0; i < fact.tuple.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += dict.Render(fact.tuple[i]);
  }
  return out + ")";
}

}  // namespace

HierarqServer::Connection::~Connection() {
  if (fd >= 0) {
    ::close(fd);
  }
}

HierarqServer::HierarqServer(Options options, VersionedDatabase db,
                             Database endogenous, Dictionary* dict)
    : options_(options),
      db_(std::move(db)),
      endogenous_(std::move(endogenous)),
      dict_(dict),
      async_(options.async) {
  frames_query_ = server_registry_.GetCounter("server.frames.query");
  frames_delta_ = server_registry_.GetCounter("server.frames.delta");
  frames_metrics_ = server_registry_.GetCounter("server.frames.metrics");
  frames_status_ = server_registry_.GetCounter("server.frames.status");
  frames_ping_ = server_registry_.GetCounter("server.frames.ping");
  frames_shutdown_ = server_registry_.GetCounter("server.frames.shutdown");
  error_frames_ = server_registry_.GetCounter("server.error_frames");
  connections_rejected_ =
      server_registry_.GetCounter("server.connections_rejected");
  query_ns_ = server_registry_.GetHistogram("server.query_ns");
}

void HierarqServer::RecordError(const Status& status) {
  error_frames_->Add();
  errors_total_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(errors_mutex_);
    recent_errors_.push_back(status.ToString());
    // Last-N ring: old errors age out, the window stays bounded.
    constexpr size_t kMaxRecentErrors = 16;
    while (recent_errors_.size() > kMaxRecentErrors) {
      recent_errors_.pop_front();
    }
  }
  logger().Warn("error_frame", {{"status", status.ToString()}});
}

HierarqServer::~HierarqServer() { Stop(); }

Status HierarqServer::Start() {
  // A peer that disappears mid-write must surface as EPIPE, not kill the
  // process.
  std::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status =
        Status::Internal(std::string("bind 127.0.0.1:") +
                         std::to_string(options_.port) + ": " +
                         std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") +
                         std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);
  start_ns_ = obs::Tracer::NowNs();
  accept_thread_ = std::jthread([this] { AcceptLoop(); });
  return Status::OK();
}

void HierarqServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void HierarqServer::Wait() {
  std::unique_lock<std::mutex> lock(lifecycle_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stopped_; });
}

void HierarqServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  // Unblock accept(2), join the acceptor, THEN close the fd — closing
  // first would race a concurrent accept against fd-number reuse.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  accept_thread_ = std::jthread();  // Join.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock every connection reader; their threads then exit. The fds
  // stay OPEN (shutdown, not close) until the last shared_ptr drops, so
  // in-flight async jobs still write into a dead-but-valid socket
  // instead of a recycled descriptor.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_) {
      if (const std::shared_ptr<Connection> connection = weak.lock()) {
        ::shutdown(connection->fd, SHUT_RDWR);
      }
    }
  }
  std::vector<std::jthread> threads;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    threads.swap(connection_threads_);
  }
  threads.clear();  // Join.
  // Cancel + drain queued evaluations; completions fire into the
  // shut-down sockets harmlessly.
  async_.Shutdown();
}

void HierarqServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // Listen socket shut down (Stop) or fatal.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // The connection cap: accept-then-reject. Accepting first (instead
    // of letting the peer rot in the listen backlog) lets us answer with
    // a decodable error frame, so a client can distinguish "server full,
    // retry later" from a dead server. Request id 0 marks the error as
    // connection-scoped (wire.h) — the peer has not sent a request yet.
    // The count is claimed HERE, not in ServeConnection, so a burst of
    // accepts cannot overshoot the cap before the threads start.
    if (options_.max_connections > 0 &&
        active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      connections_rejected_->Add();
      const Status status = Status::ResourceExhausted(
          "connection limit reached (" +
          std::to_string(options_.max_connections) + " active)");
      logger().Warn("connection_rejected",
                    {{"max_connections",
                      std::to_string(options_.max_connections)}});
      (void)WriteFrame(fd, FrameType::kErrorFrame, WireFormat::kNative, 0,
                       /*request_id=*/0,
                       EncodeError(status, WireFormat::kNative));
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(connection);
    connection_threads_.emplace_back(
        [this, connection = std::move(connection)]() mutable {
          ServeConnection(std::move(connection));
        });
  }
}

// Every response goes out under the connection's write mutex — shared by
// the connection thread (errors, acks, pongs) and submitter threads
// (query results), so two frames never interleave on the wire.
void HierarqServer::ServeConnection(std::shared_ptr<Connection> connection) {
  // The count was claimed in AcceptLoop (against the connection cap).
  // Decrement on EVERY exit path; the count feeds kStatus.
  struct ConnectionGuard {
    std::atomic<uint64_t>* count;
    ~ConnectionGuard() { count->fetch_sub(1, std::memory_order_relaxed); }
  } guard{&active_connections_};

  const auto send = [&connection](FrameType type, WireFormat format,
                                  uint16_t flags, uint64_t request_id,
                                  std::string_view payload) {
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    (void)WriteFrame(connection->fd, type, format, flags, request_id,
                     payload);
  };
  const auto send_error = [this, &send](const FrameHeader& request,
                                        const Status& status) {
    RecordError(status);
    send(FrameType::kErrorFrame, request.format, 0, request.request_id,
         EncodeError(status, request.format));
  };

  while (true) {
    Result<Frame> frame = ReadFrame(connection->fd);
    if (!frame.ok()) {
      if (!frame.status().Is(StatusCode::kNotFound)) {
        // Protocol violation: answer once, then close — a desynchronized
        // length-prefixed stream cannot be re-synchronized.
        FrameHeader poison;
        send_error(poison, frame.status());
      }
      return;
    }
    frames_total_.fetch_add(1, std::memory_order_relaxed);
    switch (frame->header.type) {
      case FrameType::kQueryRequest:
        frames_query_->Add();
        HandleQuery(connection, *frame);
        break;
      case FrameType::kDeltaBatch:
        frames_delta_->Add();
        HandleDelta(connection, *frame);
        break;
      case FrameType::kMetricsRequest:
        frames_metrics_->Add();
        HandleMetrics(connection, *frame);
        break;
      case FrameType::kStatusRequest:
        frames_status_->Add();
        HandleStatus(connection, *frame);
        break;
      case FrameType::kPing:
        frames_ping_->Add();
        send(FrameType::kPong, frame->header.format, 0,
             frame->header.request_id, "");
        break;
      case FrameType::kShutdown:
        frames_shutdown_->Add();
        // Ack before flagging: the client's round-trip completes, then
        // the owning thread (blocked in Wait) runs Stop.
        send(FrameType::kShutdown, frame->header.format, 0,
             frame->header.request_id, "");
        RequestShutdown();
        return;
      default:
        send_error(frame->header,
                   Status::InvalidArgument(
                       "unexpected frame type " +
                       std::to_string(static_cast<int>(frame->header.type)) +
                       " for a server"));
        return;
    }
  }
}

void HierarqServer::HandleQuery(
    const std::shared_ptr<Connection>& connection, const Frame& frame) {
  const FrameHeader header = frame.header;
  const auto send = [connection](FrameType type, WireFormat format,
                                 uint16_t flags, uint64_t request_id,
                                 std::string_view payload) {
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    (void)WriteFrame(connection->fd, type, format, flags, request_id,
                     payload);
  };
  // By VALUE: this lambda is copied into the async job below and runs on
  // a submitter thread after this frame of HandleQuery has returned — a
  // by-reference capture of `send`/`header` would dangle. `this` stays
  // valid on submitter threads: Stop() drains the async service before
  // the server is torn down.
  const auto send_error = [this, send, header](const Status& status) {
    RecordError(status);
    send(FrameType::kErrorFrame, header.format, 0, header.request_id,
         EncodeError(status, header.format));
  };

  Result<QueryRequest> request =
      DecodeQueryRequest(frame.payload, header.format);
  if (!request.ok()) {
    send_error(request.status());
    return;
  }
  Result<ConjunctiveQuery> parsed = ParseQuery(request->query);
  if (!parsed.ok()) {
    send_error(parsed.status());
    return;
  }
  const SolverKind solver = request->solver;
  const bool want_trace = (header.flags & kFlagTrace) != 0;
  const bool want_stats = (header.flags & kFlagStats) != 0;
  const std::string trace_id = request->trace_id;
  const std::string query_text = request->query;
  auto query =
      std::make_shared<ConjunctiveQuery>(std::move(parsed).ValueOrDie());

  const Status admitted = async_.Submit(
      [this, connection, query, header, solver, want_trace, want_stats,
       trace_id, query_text, send,
       send_error](EvalService& service, const CancelToken& cancel) {
        QueryResult result;
        result.solver = solver;
        // Accounting is collected when the client asked for it OR the
        // slow-query log might need it — disabled cost stays one
        // thread_local load per step in the runners.
        const bool collect_stats =
            want_stats || options_.slow_query_ms >= 0;
        obs::QueryStats* const stats =
            collect_stats ? &result.stats : nullptr;
        if (stats != nullptr) {
          stats->queue_wait_ns = AsyncEvalService::CurrentJobQueueWaitNs();
        }
        const uint64_t eval_start_ns = obs::Tracer::NowNs();
        std::vector<obs::TraceEvent> trace_events;
        Status status;
        if (want_trace) {
          // Traced requests run exclusive: the tracer is process-global
          // (two traced requests would blend rings), and the unique db
          // lock quiesces other evaluations so the captured trace covers
          // exactly this request's steps — what check_trace.py verifies.
          std::lock_guard<std::mutex> trace_lock(trace_mutex_);
          std::unique_lock<std::shared_mutex> db_lock(db_mutex_);
          obs::Tracer tracer;
          tracer.Install();
          status = EvaluateSolver(service, *query, solver, cancel, &result,
                                  stats);
          if (Result<EliminationPlan> plan = EliminationPlan::Build(*query);
              plan.ok()) {
            tracer.EmitInstant("plan", "steps",
                               static_cast<double>(plan->steps().size()));
          }
          tracer.Uninstall();
          std::ostringstream trace;
          // The client stitches this into its own timeline; the envelope's
          // trace_id ties the file to both sides' log lines.
          tracer.WriteChromeTrace(trace, /*pid=*/1, trace_id);
          result.trace_json = std::move(trace).str();
          trace_events = tracer.Snapshot();
        } else {
          std::shared_lock<std::shared_mutex> db_lock(db_mutex_);
          status = EvaluateSolver(service, *query, solver, cancel, &result,
                                  stats);
        }
        const uint64_t eval_ns = obs::Tracer::NowNs() - eval_start_ns;
        query_ns_->Observe(eval_ns);

        // Slow-query log: threshold 0 logs everything (how CI forces a
        // line), errors included — a query that burned its deadline is
        // exactly the one the operator wants to see.
        if (options_.slow_query_ms >= 0 &&
            eval_ns >= static_cast<uint64_t>(options_.slow_query_ms) *
                           1'000'000ull) {
          std::string explain;
          if (Result<EliminationPlan> plan = EliminationPlan::Build(*query);
              plan.ok()) {
            explain = obs::RenderExplainAnalyze(*plan, query->variables(),
                                                trace_events);
          }
          logger().Warn(
              "slow_query",
              {{"solver", SolverKindName(solver)},
               {"query", query_text},
               {"trace_id", trace_id},
               {"status", status.ok() ? "ok" : status.ToString()},
               {"eval_ns", std::to_string(eval_ns)},
               {"stats", result.stats.Render()},
               {"explain", explain}});
        }

        if (!status.ok()) {
          send_error(status);
          return;
        }
        const uint16_t flags =
            static_cast<uint16_t>((want_trace ? kFlagTrace : 0) |
                                  (want_stats ? kFlagStats : 0));
        send(FrameType::kResultFrame, header.format, flags,
             header.request_id,
             EncodeQueryResult(result, header.format, want_stats,
                               want_trace));
      },
      request->deadline_ms);
  if (!admitted.ok()) {
    // Load shed at the door: the rejection is this request's answer.
    send_error(admitted);
  }
}

Status HierarqServer::EvaluateSolver(EvalService& service,
                                     const ConjunctiveQuery& query,
                                     SolverKind solver,
                                     const CancelToken& cancel,
                                     QueryResult* out,
                                     obs::QueryStats* stats) {
  const std::vector<const ConjunctiveQuery*> one{&query};
  switch (solver) {
    case SolverKind::kCount: {
      const CountMonoid monoid;
      auto values = service.EvaluateMany<CountMonoid>(
          monoid, one, db_, [](const Fact&) -> uint64_t { return 1; },
          "server.count", &cancel, stats);
      if (!values.front().ok()) {
        return values.front().status();
      }
      out->count = *values.front();
      return Status::OK();
    }
    case SolverKind::kPqe:
    case SolverKind::kExpect: {
      // Weights are probabilities, clamped exactly as TidDatabase clamps
      // file-loaded facts, so a fact answers the same through either
      // front door.
      const auto annotator = [this](const Fact& fact) {
        return std::clamp(db_.WeightOf(fact), 0.0, 1.0);
      };
      if (solver == SolverKind::kPqe) {
        const ProbMonoid monoid;
        auto values = service.EvaluateMany<ProbMonoid>(
            monoid, one, db_, annotator, "server.pqe", &cancel, stats);
        if (!values.front().ok()) {
          return values.front().status();
        }
        out->number = *values.front();
      } else {
        const ExpectationMonoid monoid;
        auto values = service.EvaluateMany<ExpectationMonoid>(
            monoid, one, db_, annotator, "server.expect", &cancel, stats);
        if (!values.front().ok()) {
          return values.front().status();
        }
        out->number = *values.front();
      }
      return Status::OK();
    }
    case SolverKind::kResilience: {
      auto values = ComputeResilienceBatch(service, one, db_.facts(),
                                           endogenous_, &cancel);
      if (!values.front().ok()) {
        return values.front().status();
      }
      out->count = *values.front();
      return Status::OK();
    }
    case SolverKind::kShapley: {
      auto values =
          AllShapleyValues(service, query, db_.facts(), endogenous_, &cancel);
      if (!values.ok()) {
        return values.status();
      }
      out->shapley.reserve(values->size());
      for (const auto& [fact, fraction] : *values) {
        out->shapley.push_back(ShapleyEntry{RenderFact(fact, *dict_),
                                            fraction.ToString(),
                                            fraction.ToDouble()});
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown solver");
}

void HierarqServer::HandleDelta(const std::shared_ptr<Connection>& connection,
                                const Frame& frame) {
  const auto send = [&connection](FrameType type, WireFormat format,
                                  uint16_t flags, uint64_t request_id,
                                  std::string_view payload) {
    std::lock_guard<std::mutex> lock(connection->write_mutex);
    (void)WriteFrame(connection->fd, type, format, flags, request_id,
                     payload);
  };
  DeltaAck ack;
  {
    // Unique from PARSE, not just apply: ParseDeltaLine interns new
    // constants into the shared dictionary, which query jobs read
    // concurrently (Shapley fact rendering).
    std::unique_lock<std::shared_mutex> lock(db_mutex_);
    Result<DeltaBatch> batch =
        ParseDeltaLine(frame.payload, dict_, db_, /*query=*/nullptr);
    if (!batch.ok()) {
      // The whole line was rejected before anything was applied — the
      // generation is unchanged, exactly the CLI update-mode contract.
      lock.unlock();
      RecordError(batch.status());
      send(FrameType::kErrorFrame, frame.header.format, 0,
           frame.header.request_id,
           EncodeError(batch.status(), frame.header.format));
      return;
    }
    if (options_.persist != nullptr) {
      // Durability point, still under the unique lock: the WAL append
      // and the Apply are atomic together, so the on-disk log never
      // disagrees with the state it claims to describe (the
      // single-writer CHECK in VersionedDatabase::Apply backstops the
      // lock). Only after the fsynced append may we apply and ack —
      // ack implies durable. The line is stored in canonical rendered
      // form, so recovery replays exactly the batch applied here.
      const Status appended = options_.persist->Append(
          db_.generation() + 1, RenderDeltaLine(*batch, *dict_));
      if (!appended.ok()) {
        // Not applied, not acked — the client sees the failure, and a
        // crash now recovers to the pre-batch generation. Consistent
        // either way.
        lock.unlock();
        RecordError(appended);
        send(FrameType::kErrorFrame, frame.header.format, 0,
             frame.header.request_id,
             EncodeError(appended, frame.header.format));
        return;
      }
    }
    db_.Apply(*batch);
    // The applied log entry is acked below and this server is the only
    // reader, so retention can be zero (the CLI's update loop does the
    // same).
    db_.TruncateLog(db_.generation());
    ack.generation = db_.generation();
    ack.num_facts = db_.NumFacts();
    if (options_.persist != nullptr && options_.persist->ShouldSnapshot()) {
      // Still under the lock: the snapshot sees exactly the acked
      // state. Failure is logged, not fatal — the WAL already holds
      // every acked batch, so durability is intact; only replay time
      // suffers until a snapshot succeeds.
      const Status snapshot = options_.persist->WriteSnapshot(db_, *dict_);
      if (!snapshot.ok()) {
        logger().Error("persist.snapshot_failed",
                       {{"status", snapshot.ToString()}});
      }
    }
  }
  send(FrameType::kDeltaAck, frame.header.format, 0, frame.header.request_id,
       EncodeDeltaAck(ack, frame.header.format));
}

void HierarqServer::HandleMetrics(
    const std::shared_ptr<Connection>& connection, const Frame& frame) {
  // The frame's format picks the rendering: native = text, json = JSON —
  // same catalog either way (global + eval service + async layer).
  std::string payload;
  if (frame.header.format == WireFormat::kJson) {
    payload = "{\"global\": " + obs::MetricsRegistry::Global().RenderJson() +
              ", \"service\": " + async_.service().metrics().RenderJson() +
              ", \"async\": " + async_.metrics().RenderJson() +
              ", \"server\": " + server_registry_.RenderJson() + "}";
  } else {
    payload = "# global\n" + obs::MetricsRegistry::Global().RenderText() +
              "# service\n" + async_.service().metrics().RenderText() +
              "# async\n" + async_.metrics().RenderText() +
              "# server\n" + server_registry_.RenderText();
  }
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  (void)WriteFrame(connection->fd, FrameType::kMetricsResponse,
                   frame.header.format, 0, frame.header.request_id, payload);
}

void HierarqServer::HandleStatus(
    const std::shared_ptr<Connection>& connection, const Frame& frame) {
  StatusPayload status;
  status.uptime_ns = obs::Tracer::NowNs() - start_ns_;
  status.queue_depth = async_.queue_depth();
  status.oldest_job_age_ns = async_.oldest_job_age_ns();
  status.active_connections =
      active_connections_.load(std::memory_order_relaxed);
  status.requests_total = frames_total_.load(std::memory_order_relaxed);
  status.errors_total = errors_total_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(errors_mutex_);
    status.recent_errors.assign(recent_errors_.begin(),
                                recent_errors_.end());
  }
  const std::string payload =
      EncodeStatusPayload(status, frame.header.format);
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  (void)WriteFrame(connection->fd, FrameType::kStatusResponse,
                   frame.header.format, 0, frame.header.request_id, payload);
}

}  // namespace hierarq::net
