#include "hierarq/net/async_service.h"

#include <utility>

#include "hierarq/obs/trace.h"

namespace hierarq::net {

namespace {

/// Queue wait of the job running on this submitter thread (0 elsewhere).
/// Set by SubmitterLoop immediately before each job runs; a thread_local
/// keeps the Job signature — and every existing caller — unchanged.
thread_local uint64_t g_current_job_queue_wait_ns = 0;

}  // namespace

AsyncEvalService::AsyncEvalService(Options options)
    : options_(options), service_(options.service) {
  accepted_ = registry_.GetCounter("async.jobs_accepted");
  rejected_ = registry_.GetCounter("async.jobs_rejected_queue_full");
  completed_ = registry_.GetCounter("async.jobs_completed");
  queue_gauge_ = registry_.GetGauge("async.queue_depth");
  const size_t n = options.submit_threads == 0 ? 1 : options.submit_threads;
  submitters_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    submitters_.emplace_back([this] { SubmitterLoop(); });
  }
}

AsyncEvalService::~AsyncEvalService() { Shutdown(); }

Status AsyncEvalService::Submit(Job job, uint64_t deadline_ms) {
  Queued queued;
  queued.job = std::move(job);
  queued.token = std::make_shared<CancelToken>();
  queued.enqueue_ns = obs::Tracer::NowNs();
  const uint64_t budget_ms =
      deadline_ms != 0 ? deadline_ms : options_.default_deadline_ms;
  if (budget_ms != 0) {
    // Armed NOW: queue wait burns deadline budget, so a request stuck
    // behind a backlog fails fast at its first checkpoint instead of
    // evaluating long after the client gave up.
    queued.token->ExpireAfter(budget_ms * 1'000'000ull);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return Status::ResourceExhausted("service is shutting down");
    }
    if (options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      rejected_->Add();
      return Status::ResourceExhausted(
          "admission queue full (" +
          std::to_string(options_.max_queue_depth) + " jobs waiting)");
    }
    queue_.push_back(std::move(queued));
    accepted_->Add();
    queue_gauge_->Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return Status::OK();
}

size_t AsyncEvalService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

uint64_t AsyncEvalService::oldest_job_age_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) {
    return 0;
  }
  // FIFO queue: the front is always the longest waiter.
  const uint64_t now = obs::Tracer::NowNs();
  const uint64_t enqueued = queue_.front().enqueue_ns;
  return now > enqueued ? now - enqueued : 0;
}

uint64_t AsyncEvalService::CurrentJobQueueWaitNs() {
  return g_current_job_queue_wait_ns;
}

void AsyncEvalService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
    // Queued evaluations are pointless now — cancel their tokens so each
    // job's replay aborts at its first checkpoint. The jobs still RUN
    // (the submitters drain the queue below), so completions fire and
    // every in-flight request gets its (cancelled) response.
    for (Queued& queued : queue_) {
      queued.token->Cancel();
    }
  }
  cv_.notify_all();
  submitters_.clear();  // jthread join: drains the queue.
}

void AsyncEvalService::SubmitterLoop() {
  while (true) {
    Queued queued;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained.
      }
      queued = std::move(queue_.front());
      queue_.pop_front();
      queue_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
    const uint64_t now = obs::Tracer::NowNs();
    g_current_job_queue_wait_ns =
        now > queued.enqueue_ns ? now - queued.enqueue_ns : 0;
    queued.job(service_, *queued.token);
    g_current_job_queue_wait_ns = 0;
    completed_->Add();
  }
}

}  // namespace hierarq::net
