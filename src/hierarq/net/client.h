#ifndef HIERARQ_NET_CLIENT_H_
#define HIERARQ_NET_CLIENT_H_

/// \file client.h
/// \brief `HierarqClient` — a synchronous connection to a hierarq server.
///
/// One client owns one socket and speaks the wire protocol (net/wire.h)
/// request-by-request: each call writes a frame with a fresh request id,
/// reads frames until the echoed id matches (a client that pipelines via
/// multiple threads should use one HierarqClient per thread — this class
/// is not thread-safe), converts kErrorFrame answers into their carried
/// `Status`, and returns the decoded payload. The wire format chosen at
/// construction applies to every request (the server answers in kind);
/// `Metrics` is the exception, where the format picks the RENDERING
/// (native = text, JSON = machine-readable) per call.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "hierarq/net/wire.h"
#include "hierarq/util/random.h"
#include "hierarq/util/result.h"

namespace hierarq::net {

/// Splits "host:port" (or bare ":port" / "port" for loopback). Fails on
/// missing or non-numeric ports.
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    std::string_view host_port);

class HierarqClient {
 public:
  struct Options {
    WireFormat format = WireFormat::kNative;
    /// Opt-in retry for TRANSIENT query rejections: a `Query` answered
    /// with a complete kResourceExhausted error frame (the server's
    /// admission queue is full) is retried up to this many times with
    /// capped jittered exponential backoff. 0 (the default) never
    /// retries. Only fully-decoded error frames retry — a transport
    /// error or torn read never does, so a request whose response was
    /// partially received is never silently re-sent.
    uint32_t max_retries = 0;
    /// First backoff delay; attempt k waits min(cap, initial << k),
    /// jittered uniformly into [delay/2, delay] so a herd of rejected
    /// clients does not re-arrive in lockstep.
    uint64_t backoff_initial_ms = 5;
    uint64_t backoff_cap_ms = 250;
    /// Seeds the jitter (deterministic for tests).
    uint64_t retry_jitter_seed = 0x9e3779b97f4a7c15ULL;
  };

  explicit HierarqClient(WireFormat format = WireFormat::kNative)
      : HierarqClient(Options{.format = format}) {}
  explicit HierarqClient(Options options)
      : options_(options), rng_(options.retry_jitter_seed) {}
  ~HierarqClient() { Close(); }

  HierarqClient(const HierarqClient&) = delete;
  HierarqClient& operator=(const HierarqClient&) = delete;
  HierarqClient(HierarqClient&& other) noexcept { *this = std::move(other); }
  HierarqClient& operator=(HierarqClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      options_ = other.options_;
      next_request_id_ = other.next_request_id_;
      retries_ = other.retries_;
    }
    return *this;
  }

  /// Connects to `host`:`port` (numeric IPv4 or "localhost").
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  WireFormat format() const { return options_.format; }
  void set_format(WireFormat format) { options_.format = format; }
  const Options& options() const { return options_; }

  /// Total retries performed by `Query` over this client's lifetime.
  uint64_t retries() const { return retries_; }

  /// Evaluates `query` with `solver` server-side. `deadline_ms` 0 uses
  /// the server default; with `capture_trace` the result carries the
  /// request's Chrome trace JSON in `QueryResult::trace_json`; with
  /// `capture_stats` it carries the server's per-query accounting in
  /// `QueryResult::stats` (old servers ignore the bit and answer without
  /// the section — check the response's kFlagStats before trusting it).
  /// A non-empty `trace_id` rides the request so the server tags its
  /// side of the work with it (see MintTraceId).
  Result<QueryResult> Query(SolverKind solver, const std::string& query,
                            uint64_t deadline_ms = 0,
                            bool capture_trace = false,
                            bool capture_stats = false,
                            const std::string& trace_id = "");

  /// Whether the last Query's response announced a stats section (the
  /// server understood kFlagStats).
  bool last_response_had_stats() const { return last_response_had_stats_; }

  /// Fetches the server's health snapshot (uptime, queue, connections,
  /// recent errors) — the kStatus round-trip.
  Result<StatusPayload> ServerStatus();

  /// Mints a fresh 16-hex-char trace id for cross-process correlation.
  static std::string MintTraceId();

  /// Applies one atomic delta line (the update grammar of
  /// incremental/delta_text.h) to the server's database. On a parse
  /// error NOTHING was applied and the server's generation is unchanged.
  Result<DeltaAck> ApplyDelta(std::string_view line);

  /// Scrapes the server's metrics catalog, rendered as text
  /// (kNative) or JSON (kJson).
  Result<std::string> Metrics(WireFormat rendering);

  Status Ping();

  /// Asks the server to stop; returns once the server acked (its owner
  /// thread then tears it down).
  Status Shutdown();

 private:
  /// Writes one request, reads until the response with the same id,
  /// converts error frames to their Status. `expected` is the success
  /// frame type; anything else is a protocol error.
  Result<Frame> RoundTrip(FrameType type, uint16_t flags,
                          std::string_view payload, WireFormat format,
                          FrameType expected);

  int fd_ = -1;
  Options options_;
  Rng rng_;
  uint64_t next_request_id_ = 1;
  uint64_t retries_ = 0;
  bool last_response_had_stats_ = false;
};

}  // namespace hierarq::net

#endif  // HIERARQ_NET_CLIENT_H_
