#ifndef HIERARQ_ALGEBRA_SATCOUNT_MONOID_H_
#define HIERARQ_ALGEBRA_SATCOUNT_MONOID_H_

/// \file satcount_monoid.h
/// \brief The #Sat 2-monoid used for Shapley values (paper Definition 5.14).
///
/// Domain K = ℕ^(ℕ×𝔹): vectors indexed by (k, b) where k is a subset size
/// and b a Boolean. For a Boolean formula F over endogenous facts Dn[F],
/// the intended value (Eq. (21)) is
///     x(k, b) = #subsets D' ⊆ Dn[F] with |D'| = k and F(Dx ∪ D') = b.
/// The operators (Eqs. (15)/(16)) are convolutions in k joined with ∨/∧ in
/// b. Identities:
///     0(k,b) = [k = 0 ∧ b = false]   (annotation of absent facts)
///     1(k,b) = [k = 0 ∧ b = true]    (annotation of exogenous facts)
///     ★(k,b) = [k=0 ∧ b=false] + [k=1 ∧ b=true]   (endogenous facts)
/// Note a ⊗ 0 ≠ 0 in general — the 2-monoid only guarantees 0 ⊗ 0 = 0,
/// which is why Algorithm 1 must join on support *unions* (Lemma 6.6).
///
/// The counter type is a template parameter:
///   * `BigUint`   — exact counts (subsets counts overflow uint64 near
///                   |Dn| ≈ 68); used by the exact Shapley solver;
///   * `uint64_t`  — counts mod 2^64; fast, exact while |Dn| is small;
///   * `double`    — floating approximation for quick estimation.
/// Vectors are truncated to |Dn|+1 entries; entry k of a convolution reads
/// only entries ≤ k of the operands, so truncation is lossless and each
/// operation costs O(|Dn|²) (Theorem 5.16).

#include <cstdint>
#include <string>
#include <vector>

#include "hierarq/util/bigint.h"
#include "hierarq/util/logging.h"

namespace hierarq {

/// A (k, b)-indexed count vector: `on_true[k]` is x(k, true) and
/// `on_false[k]` is x(k, false).
template <typename Count>
struct SatCountVec {
  std::vector<Count> on_false;
  std::vector<Count> on_true;

  bool operator==(const SatCountVec& other) const {
    return on_false == other.on_false && on_true == other.on_true;
  }
  bool operator!=(const SatCountVec& other) const {
    return !(*this == other);
  }
};

template <typename Count>
class SatCountMonoid {
 public:
  using value_type = SatCountVec<Count>;

  /// A monoid for at most `max_size` endogenous facts (vectors of length
  /// max_size+1).
  explicit SatCountMonoid(size_t max_size) : length_(max_size + 1) {}

  size_t max_size() const { return length_ - 1; }
  size_t vector_length() const { return length_; }

  value_type Zero() const {
    value_type out = Empty();
    out.on_false[0] = Count(1);
    return out;
  }

  value_type One() const {
    value_type out = Empty();
    out.on_true[0] = Count(1);
    return out;
  }

  /// The ★ annotation of Definition 5.15 (endogenous facts): excluded (size
  /// 0) makes the leaf false, included (size 1) makes it true.
  value_type Star() const {
    value_type out = Empty();
    out.on_false[0] = Count(1);
    if (length_ > 1) {
      out.on_true[1] = Count(1);
    }
    return out;
  }

  /// Eq. (15): convolution in k, disjunction in b.
  /// true  ← (t,t), (t,f), (f,t);   false ← (f,f).
  value_type Plus(const value_type& x, const value_type& y) const {
    CheckShape(x);
    CheckShape(y);
    value_type out = Empty();
    for (size_t k1 = 0; k1 < length_; ++k1) {
      for (size_t k2 = 0; k1 + k2 < length_; ++k2) {
        const size_t k = k1 + k2;
        out.on_false[k] += x.on_false[k1] * y.on_false[k2];
        out.on_true[k] += x.on_true[k1] * y.on_true[k2] +
                          x.on_true[k1] * y.on_false[k2] +
                          x.on_false[k1] * y.on_true[k2];
      }
    }
    return out;
  }

  /// Eq. (16): convolution in k, conjunction in b.
  /// true  ← (t,t);   false ← (f,f), (f,t), (t,f).
  value_type Times(const value_type& x, const value_type& y) const {
    CheckShape(x);
    CheckShape(y);
    value_type out = Empty();
    for (size_t k1 = 0; k1 < length_; ++k1) {
      for (size_t k2 = 0; k1 + k2 < length_; ++k2) {
        const size_t k = k1 + k2;
        out.on_true[k] += x.on_true[k1] * y.on_true[k2];
        out.on_false[k] += x.on_false[k1] * y.on_false[k2] +
                           x.on_false[k1] * y.on_true[k2] +
                           x.on_true[k1] * y.on_false[k2];
      }
    }
    return out;
  }

  static std::string ToString(const value_type& x) {
    std::string out = "{false:[";
    for (size_t i = 0; i < x.on_false.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += CountToString(x.on_false[i]);
    }
    out += "], true:[";
    for (size_t i = 0; i < x.on_true.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += CountToString(x.on_true[i]);
    }
    return out + "]}";
  }

 private:
  value_type Empty() const {
    value_type out;
    out.on_false.assign(length_, Count(0));
    out.on_true.assign(length_, Count(0));
    return out;
  }

  void CheckShape(const value_type& v) const {
    HIERARQ_CHECK_EQ(v.on_false.size(), length_);
    HIERARQ_CHECK_EQ(v.on_true.size(), length_);
  }

  static std::string CountToString(const Count& c) {
    if constexpr (std::is_same_v<Count, BigUint>) {
      return c.ToString();
    } else {
      return std::to_string(c);
    }
  }

  size_t length_;
};

}  // namespace hierarq

#endif  // HIERARQ_ALGEBRA_SATCOUNT_MONOID_H_
