#include "hierarq/algebra/provenance.h"

#include <algorithm>

#include "hierarq/algebra/bagmax_monoid.h"  // SatAddU64 / SatMulU64
#include "hierarq/util/hash.h"
#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

uint64_t ComputeHash(ProvTree::Kind kind, uint64_t symbol,
                     const std::vector<ProvTreeRef>& children) {
  uint64_t h = Mix64(static_cast<uint64_t>(kind) + 0x517cc1b727220a95ULL);
  h = HashCombine(h, symbol);
  for (const ProvTreeRef& child : children) {
    h = HashCombine(h, child->hash());
  }
  return h;
}

/// Builds an n-ary node of `kind`, flattening same-kind children and
/// sorting children canonically.
ProvTreeRef MakeNode(ProvTree::Kind kind, const ProvTreeRef& a,
                     const ProvTreeRef& b) {
  std::vector<ProvTreeRef> children;
  for (const ProvTreeRef& side : {a, b}) {
    if (side->kind() == kind) {
      children.insert(children.end(), side->children().begin(),
                      side->children().end());
    } else {
      children.push_back(side);
    }
  }
  std::sort(children.begin(), children.end(),
            [](const ProvTreeRef& x, const ProvTreeRef& y) {
              return ProvTree::Compare(*x, *y) < 0;
            });
  return std::make_shared<const ProvTree>(kind, 0, std::move(children));
}

}  // namespace

ProvTree::ProvTree(Kind kind, uint64_t symbol,
                   std::vector<ProvTreeRef> children)
    : kind_(kind), symbol_(symbol), children_(std::move(children)) {
  hash_ = ComputeHash(kind_, symbol_, children_);
}

ProvTreeRef ProvTree::False() {
  static const ProvTreeRef kFalseTree =
      std::make_shared<const ProvTree>(Kind::kFalse, 0,
                                       std::vector<ProvTreeRef>{});
  return kFalseTree;
}

ProvTreeRef ProvTree::True() {
  static const ProvTreeRef kTrueTree =
      std::make_shared<const ProvTree>(Kind::kTrue, 0,
                                       std::vector<ProvTreeRef>{});
  return kTrueTree;
}

ProvTreeRef ProvTree::Leaf(uint64_t symbol) {
  return std::make_shared<const ProvTree>(Kind::kLeaf, symbol,
                                          std::vector<ProvTreeRef>{});
}

ProvTreeRef ProvTree::Or(const ProvTreeRef& a, const ProvTreeRef& b) {
  HIERARQ_CHECK(a != nullptr && b != nullptr);
  // Identity law of ⊕ (valid in every 2-monoid, hence safe to apply).
  if (a->kind() == Kind::kFalse) {
    return b;
  }
  if (b->kind() == Kind::kFalse) {
    return a;
  }
  return MakeNode(Kind::kOr, a, b);
}

ProvTreeRef ProvTree::And(const ProvTreeRef& a, const ProvTreeRef& b) {
  HIERARQ_CHECK(a != nullptr && b != nullptr);
  // Identity law of ⊗. Note: no annihilation — And(x, false) is kept for
  // x ≠ false. The one sanctioned collapse is 0 ⊗ 0 = 0 (Definition 5.6),
  // which holds in every 2-monoid and so is safe to apply structurally.
  if (a->kind() == Kind::kFalse && b->kind() == Kind::kFalse) {
    return a;
  }
  if (a->kind() == Kind::kTrue) {
    return b;
  }
  if (b->kind() == Kind::kTrue) {
    return a;
  }
  return MakeNode(Kind::kAnd, a, b);
}

int ProvTree::Compare(const ProvTree& a, const ProvTree& b) {
  if (a.kind_ != b.kind_) {
    return a.kind_ < b.kind_ ? -1 : 1;
  }
  if (a.symbol_ != b.symbol_) {
    return a.symbol_ < b.symbol_ ? -1 : 1;
  }
  if (a.children_.size() != b.children_.size()) {
    return a.children_.size() < b.children_.size() ? -1 : 1;
  }
  for (size_t i = 0; i < a.children_.size(); ++i) {
    const int c = Compare(*a.children_[i], *b.children_[i]);
    if (c != 0) {
      return c;
    }
  }
  return 0;
}

std::set<uint64_t> ProvTree::Support() const {
  std::set<uint64_t> out;
  // Iterative DFS to avoid building a lambda-recursion for a hot helper.
  std::vector<const ProvTree*> stack = {this};
  while (!stack.empty()) {
    const ProvTree* node = stack.back();
    stack.pop_back();
    if (node->kind_ == Kind::kLeaf) {
      out.insert(node->symbol_);
    }
    for (const ProvTreeRef& child : node->children_) {
      stack.push_back(child.get());
    }
  }
  return out;
}

bool ProvTree::IsDecomposable() const {
  std::set<uint64_t> seen_symbols;
  std::vector<const ProvTree*> stack = {this};
  while (!stack.empty()) {
    const ProvTree* node = stack.back();
    stack.pop_back();
    if (node->kind_ == Kind::kLeaf &&
        !seen_symbols.insert(node->symbol_).second) {
      return false;
    }
    for (const ProvTreeRef& child : node->children_) {
      stack.push_back(child.get());
    }
  }
  return true;
}

size_t ProvTree::NumNodes() const {
  size_t count = 0;
  std::vector<const ProvTree*> stack = {this};
  while (!stack.empty()) {
    const ProvTree* node = stack.back();
    stack.pop_back();
    ++count;
    for (const ProvTreeRef& child : node->children_) {
      stack.push_back(child.get());
    }
  }
  return count;
}

size_t ProvTree::Depth() const {
  size_t depth = 1;
  for (const ProvTreeRef& child : children_) {
    depth = std::max(depth, 1 + child->Depth());
  }
  return depth;
}

std::string ProvTree::ToString() const {
  switch (kind_) {
    case Kind::kFalse:
      return "⊥";
    case Kind::kTrue:
      return "⊤";
    case Kind::kLeaf:
      return "f" + std::to_string(symbol_);
    case Kind::kOr:
    case Kind::kAnd: {
      const char* op = kind_ == Kind::kOr ? " ∨ " : " ∧ ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) {
          out += op;
        }
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

bool EvalTreeBool(const ProvTree& tree,
                  const std::function<bool(uint64_t)>& present) {
  switch (tree.kind()) {
    case ProvTree::Kind::kFalse:
      return false;
    case ProvTree::Kind::kTrue:
      return true;
    case ProvTree::Kind::kLeaf:
      return present(tree.symbol());
    case ProvTree::Kind::kOr:
      for (const ProvTreeRef& child : tree.children()) {
        if (EvalTreeBool(*child, present)) {
          return true;
        }
      }
      return false;
    case ProvTree::Kind::kAnd:
      for (const ProvTreeRef& child : tree.children()) {
        if (!EvalTreeBool(*child, present)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

uint64_t EvalTreeCount(
    const ProvTree& tree,
    const std::function<uint64_t(uint64_t)>& multiplicity) {
  switch (tree.kind()) {
    case ProvTree::Kind::kFalse:
      return 0;
    case ProvTree::Kind::kTrue:
      return 1;
    case ProvTree::Kind::kLeaf:
      return multiplicity(tree.symbol());
    case ProvTree::Kind::kOr: {
      uint64_t acc = 0;
      for (const ProvTreeRef& child : tree.children()) {
        acc = SatAddU64(acc, EvalTreeCount(*child, multiplicity));
      }
      return acc;
    }
    case ProvTree::Kind::kAnd: {
      uint64_t acc = 1;
      for (const ProvTreeRef& child : tree.children()) {
        acc = SatMulU64(acc, EvalTreeCount(*child, multiplicity));
      }
      return acc;
    }
  }
  return 0;
}

}  // namespace hierarq
