#ifndef HIERARQ_ALGEBRA_TWO_MONOID_H_
#define HIERARQ_ALGEBRA_TWO_MONOID_H_

/// \file two_monoid.h
/// \brief The 2-monoid interface (paper Definition 5.6).
///
/// A 2-monoid K = (K, ⊕, ⊗) is a pair of commutative monoids over the same
/// domain — (K, ⊕) with identity 0 and (K, ⊗) with identity 1 — satisfying
/// 0 ⊗ 0 = 0. Crucially it need *not* be distributive, and none of the
/// paper's three instantiations are: distributivity would make Algorithm 1
/// solve all acyclic queries, contradicting the known hardness of the
/// non-hierarchical (but acyclic) path query for all three problems (§1).
///
/// hierarq models 2-monoids as *objects* rather than traits-only types
/// because several instantiations carry state: the bag-set-max monoid needs
/// the budget θ (vector truncation length) and the #Sat monoid needs |Dn|.
/// The concept below is what Algorithm 1 requires.

#include <concepts>
#include <cstddef>
#include <utility>

namespace hierarq {

/// C++20 concept for 2-monoid objects.
///
/// Semantics required from a model (checked by algebra property tests, not
/// expressible in the type system):
///  * Plus is associative and commutative with identity Zero();
///  * Times is associative and commutative with identity One();
///  * Times(Zero(), Zero()) == Zero().
template <typename M>
concept TwoMonoid = requires(const M m, const typename M::value_type& a,
                             const typename M::value_type& b) {
  typename M::value_type;
  { m.Zero() } -> std::convertible_to<typename M::value_type>;
  { m.One() } -> std::convertible_to<typename M::value_type>;
  { m.Plus(a, b) } -> std::convertible_to<typename M::value_type>;
  { m.Times(a, b) } -> std::convertible_to<typename M::value_type>;
};

/// Folds ⊕ over a range (returns Zero() when empty).
template <typename M, typename It>
typename M::value_type PlusFold(const M& monoid, It first, It last) {
  typename M::value_type acc = monoid.Zero();
  for (; first != last; ++first) {
    acc = monoid.Plus(acc, *first);
  }
  return acc;
}

/// Folds ⊗ over a range (returns One() when empty).
template <typename M, typename It>
typename M::value_type TimesFold(const M& monoid, It first, It last) {
  typename M::value_type acc = monoid.One();
  for (; first != last; ++first) {
    acc = monoid.Times(acc, *first);
  }
  return acc;
}

/// Instrumentation wrapper: counts ⊕/⊗ applications. Used to verify
/// Theorem 6.7 (Algorithm 1 performs O(|D|) monoid operations) without
/// touching the algorithm itself.
template <TwoMonoid M>
class CountingMonoid {
 public:
  using value_type = typename M::value_type;

  explicit CountingMonoid(M inner) : inner_(std::move(inner)) {}

  value_type Zero() const { return inner_.Zero(); }
  value_type One() const { return inner_.One(); }
  value_type Plus(const value_type& a, const value_type& b) const {
    ++plus_count_;
    return inner_.Plus(a, b);
  }
  value_type Times(const value_type& a, const value_type& b) const {
    ++times_count_;
    return inner_.Times(a, b);
  }

  size_t plus_count() const { return plus_count_; }
  size_t times_count() const { return times_count_; }
  size_t total_count() const { return plus_count_ + times_count_; }
  void ResetCounts() const { plus_count_ = times_count_ = 0; }

  const M& inner() const { return inner_; }

 private:
  M inner_;
  mutable size_t plus_count_ = 0;
  mutable size_t times_count_ = 0;
};

}  // namespace hierarq

#endif  // HIERARQ_ALGEBRA_TWO_MONOID_H_
