#ifndef HIERARQ_ALGEBRA_RESILIENCE_MONOID_H_
#define HIERARQ_ALGEBRA_RESILIENCE_MONOID_H_

/// \file resilience_monoid.h
/// \brief A fourth 2-monoid instantiation: resilience (an answer to the
/// paper's concluding Question 2).
///
/// The resilience of a true query is the minimum number of (endogenous)
/// facts whose removal makes it false [Freire et al., PVLDB'15]. For two
/// subformulas with disjoint supports:
///   * to falsify F1 ∨ F2 both must be falsified:   res = res1 + res2;
///   * to falsify F1 ∧ F2 either suffices:           res = min(res1, res2).
/// So K = ℕ ∪ {∞} with ⊕ = + and ⊗ = min is a 2-monoid with 0 = 0
/// (an absent fact is already false: cost 0) and 1 = ∞ ("true" cannot be
/// falsified), satisfying 0 ⊗ 0 = min(0,0) = 0. It is *not* a semiring:
/// min(a, b+c) ≠ min(a,b) + min(a,c) in general.
///
/// Annotations: endogenous facts cost 1 to remove, exogenous facts ∞.
/// Algorithm 1 then computes the resilience of any hierarchical SJF-BCQ in
/// linear time. (Consistent with the literature: hierarchical queries lie
/// strictly inside the poly-time side of the resilience dichotomy.)

#include <algorithm>
#include <cstdint>

#include "hierarq/algebra/bagmax_monoid.h"  // SatAddU64

namespace hierarq {

class ResilienceMonoid {
 public:
  using value_type = uint64_t;

  /// ∞: the resilience of an unfalsifiable formula.
  static constexpr uint64_t kInfinity = ~uint64_t{0};

  uint64_t Zero() const { return 0; }
  uint64_t One() const { return kInfinity; }

  /// Cost of removing an endogenous fact.
  uint64_t EndogenousCost() const { return 1; }
  /// Cost of "removing" an exogenous fact (not allowed).
  uint64_t ExogenousCost() const { return kInfinity; }

  /// Falsify both disjuncts (saturating at ∞).
  uint64_t Plus(uint64_t a, uint64_t b) const { return SatAddU64(a, b); }

  /// Falsify the cheaper conjunct.
  uint64_t Times(uint64_t a, uint64_t b) const { return std::min(a, b); }
};

}  // namespace hierarq

#endif  // HIERARQ_ALGEBRA_RESILIENCE_MONOID_H_
