#ifndef HIERARQ_ALGEBRA_PROB_MONOID_H_
#define HIERARQ_ALGEBRA_PROB_MONOID_H_

/// \file prob_monoid.h
/// \brief The probability 2-monoid (paper Definition 5.7).
///
/// Domain K = [0,1];
///   p1 ⊗ p2 = p1·p2                      (conjunction of independent events)
///   p1 ⊕ p2 = 1 − (1−p1)(1−p2)           (disjunction of independent events)
/// Identities 0 = 0 and 1 = 1. ⊗ does not distribute over ⊕, so this is a
/// 2-monoid but not a semiring. Instantiating Algorithm 1 with it yields
/// exactly the Dalvi–Suciu algorithm for evaluating a hierarchical SJF-BCQ
/// over a tuple-independent probabilistic database (Theorem 5.8).

namespace hierarq {

class ProbMonoid {
 public:
  using value_type = double;

  double Zero() const { return 0.0; }
  double One() const { return 1.0; }

  /// Probability of the disjunction of two independent events, Eq. (3).
  double Plus(double p1, double p2) const {
    return 1.0 - (1.0 - p1) * (1.0 - p2);
  }

  /// Probability of the conjunction of two independent events, Eq. (2).
  double Times(double p1, double p2) const { return p1 * p2; }
};

}  // namespace hierarq

#endif  // HIERARQ_ALGEBRA_PROB_MONOID_H_
