#ifndef HIERARQ_ALGEBRA_PROVENANCE_H_
#define HIERARQ_ALGEBRA_PROVENANCE_H_

/// \file provenance.h
/// \brief Provenance trees and the provenance 2-monoid (paper §6.1).
///
/// A provenance tree (Definition 6.1) is a rooted tree whose leaves are
/// labeled with fact symbols or true/false and whose internal nodes are
/// labeled ∧ or ∨. The provenance 2-monoid (Definition 6.2) — trees with
/// ⊕ = ∨-join and ⊗ = ∧-join — is *universal*: running Algorithm 1 on it
/// records the full syntax of the computation, and Theorem 6.4 transports
/// correctness to every concrete 2-monoid via a homomorphism φ that only
/// needs to respect decomposable trees with disjoint supports. hierarq uses
/// this machinery exactly as the paper does: the tests instantiate φ for
/// all four concrete monoids and check φ(output-tree) == concrete output.
///
/// Canonical representation: children of a node are kept sorted by a
/// structural order and same-kind children are flattened into their parent,
/// which realizes the paper's "children are an unordered set" and
/// "merge equal-label parent/child" conventions; the identity
/// simplifications Or(false, x) = x and And(true, x) = x hold by
/// construction (they are monoid identity laws, valid in every 2-monoid).
/// No other simplification is performed — in particular And(x, false) is
/// *kept* (2-monoids lack annihilation).

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hierarq/algebra/two_monoid.h"

namespace hierarq {

class ProvTree;
using ProvTreeRef = std::shared_ptr<const ProvTree>;

class ProvTree {
 public:
  enum class Kind : uint8_t { kFalse, kTrue, kLeaf, kOr, kAnd };

  /// The single false leaf (⊕ identity).
  static ProvTreeRef False();
  /// The single true leaf (⊗ identity).
  static ProvTreeRef True();
  /// A fact-symbol leaf.
  static ProvTreeRef Leaf(uint64_t symbol);
  /// ∨-join with flattening and identity simplification.
  static ProvTreeRef Or(const ProvTreeRef& a, const ProvTreeRef& b);
  /// ∧-join with flattening and identity simplification.
  static ProvTreeRef And(const ProvTreeRef& a, const ProvTreeRef& b);

  Kind kind() const { return kind_; }
  uint64_t symbol() const { return symbol_; }
  const std::vector<ProvTreeRef>& children() const { return children_; }

  /// Structural hash (cached; consistent with Equals).
  uint64_t hash() const { return hash_; }

  /// Total order on trees: kind, then symbol / child lists. Children are
  /// stored sorted by this order, so the comparison realizes unordered-set
  /// semantics.
  static int Compare(const ProvTree& a, const ProvTree& b);
  bool Equals(const ProvTree& other) const {
    return Compare(*this, other) == 0;
  }

  /// supp(x): the set of fact symbols at the leaves (Definition 6.1).
  std::set<uint64_t> Support() const;

  /// Decomposable (Definition 6.1): all fact-symbol leaf labels are
  /// distinct. Deviation from the paper's letter: repeated ⊤/⊥ leaves are
  /// permitted. The paper's footnote 8 eliminates ⊤/⊥ by simplification,
  /// but the annihilating simplification (x ∧ ⊥ → ⊥) is exactly what
  /// 2-monoids do NOT license (e.g. a ⊗ 0 ≠ 0 in the #Sat monoid), so
  /// hierarq retains ∧-⊥ subtrees; they arise once per absent-side Rule 2
  /// join and are harmless to every φ-homomorphism, which maps each ⊥ to
  /// the target monoid's 0 compositionally.
  bool IsDecomposable() const;

  size_t NumNodes() const;
  size_t Depth() const;

  /// Renders e.g. "(f1 ∧ (f2 ∨ f3))" with "⊤"/"⊥" for true/false.
  std::string ToString() const;

  // Trees must be built through the factory functions.
  ProvTree(Kind kind, uint64_t symbol, std::vector<ProvTreeRef> children);

 private:
  Kind kind_;
  uint64_t symbol_ = 0;
  std::vector<ProvTreeRef> children_;
  uint64_t hash_ = 0;
};

/// The provenance 2-monoid (Definition 6.2).
class ProvMonoid {
 public:
  using value_type = ProvTreeRef;

  ProvTreeRef Zero() const { return ProvTree::False(); }
  ProvTreeRef One() const { return ProvTree::True(); }
  ProvTreeRef Plus(const ProvTreeRef& a, const ProvTreeRef& b) const {
    return ProvTree::Or(a, b);
  }
  ProvTreeRef Times(const ProvTreeRef& a, const ProvTreeRef& b) const {
    return ProvTree::And(a, b);
  }
};

/// The homomorphism φ of Theorem 6.4, generically: fold the tree in the
/// target monoid, mapping leaf symbols through `leaf`. For decomposable
/// trees with disjoint supports this is exactly the φ the theorem needs
/// (each concrete choice of `leaf` matches the paper's per-problem φ).
template <TwoMonoid M, typename LeafFn>
typename M::value_type EvalTreeInMonoid(const M& monoid, const ProvTree& tree,
                                        const LeafFn& leaf) {
  switch (tree.kind()) {
    case ProvTree::Kind::kFalse:
      return monoid.Zero();
    case ProvTree::Kind::kTrue:
      return monoid.One();
    case ProvTree::Kind::kLeaf:
      return leaf(tree.symbol());
    case ProvTree::Kind::kOr: {
      typename M::value_type acc = monoid.Zero();
      for (const ProvTreeRef& child : tree.children()) {
        acc = monoid.Plus(acc, EvalTreeInMonoid(monoid, *child, leaf));
      }
      return acc;
    }
    case ProvTree::Kind::kAnd: {
      typename M::value_type acc = monoid.One();
      for (const ProvTreeRef& child : tree.children()) {
        acc = monoid.Times(acc, EvalTreeInMonoid(monoid, *child, leaf));
      }
      return acc;
    }
  }
  return monoid.Zero();  // Unreachable.
}

/// Boolean evaluation of the corresponding formula F_x in a world where
/// `present(symbol)` says whether each fact holds.
bool EvalTreeBool(const ProvTree& tree,
                  const std::function<bool(uint64_t)>& present);

/// Bag multiplicity of F_x: ∨ becomes +, ∧ becomes ×, a leaf contributes
/// `multiplicity(symbol)`. (Saturating uint64 arithmetic.)
uint64_t EvalTreeCount(const ProvTree& tree,
                       const std::function<uint64_t(uint64_t)>& multiplicity);

}  // namespace hierarq

#endif  // HIERARQ_ALGEBRA_PROVENANCE_H_
