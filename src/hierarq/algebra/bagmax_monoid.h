#ifndef HIERARQ_ALGEBRA_BAGMAX_MONOID_H_
#define HIERARQ_ALGEBRA_BAGMAX_MONOID_H_

/// \file bagmax_monoid.h
/// \brief The bag-set-maximization 2-monoid (paper Definition 5.9).
///
/// Domain K = monotonic vectors x ∈ ℕ^ℕ, where x(i) is "the maximum
/// multiplicity achievable with repair budget i". The operators are
/// convolutions over the (ℕ, max, +) and (ℕ, max, ×) semirings:
///
///   (x ⊕ y)(i) = max_{i1+i2=i} x(i1) + y(i2)        Eq. (10)
///   (x ⊗ y)(i) = max_{i1+i2=i} x(i1) · y(i2)        Eq. (11)
///
/// Identities: 0 = all-zeros, 1 = all-ones. ⊗ does not distribute over ⊕.
///
/// Vectors are truncated to θ+1 entries (θ = the repair budget): computing
/// entry i of a convolution only reads entries ≤ i of the operands, so the
/// truncation is lossless; this is what gives the O(|Dr|²) per-operation
/// cost in Theorem 5.11. Entries use saturating uint64 arithmetic —
/// multiplicities are bounded by ∏|relations| and saturation is reported
/// via `saturated()` rather than silently wrapping.

#include <cstdint>
#include <string>
#include <vector>

#include "hierarq/util/logging.h"

namespace hierarq {

/// Saturating add/multiply on uint64 counters.
inline uint64_t SatAddU64(uint64_t a, uint64_t b) {
  uint64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return ~uint64_t{0};
  }
  return out;
}

inline uint64_t SatMulU64(uint64_t a, uint64_t b) {
  uint64_t out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return ~uint64_t{0};
  }
  return out;
}

/// A monotone (non-decreasing) multiplicity-by-budget vector.
using BagMaxVec = std::vector<uint64_t>;

class BagMaxMonoid {
 public:
  using value_type = BagMaxVec;

  /// A monoid for repair budget `budget` (vectors of length budget+1).
  explicit BagMaxMonoid(size_t budget) : length_(budget + 1) {
    HIERARQ_CHECK_GE(length_, 1u);
  }

  size_t budget() const { return length_ - 1; }
  size_t vector_length() const { return length_; }

  /// The all-zeros vector (⊕ identity; annotation of absent facts).
  BagMaxVec Zero() const { return BagMaxVec(length_, 0); }

  /// The all-ones vector (⊗ identity; annotation of facts already in D,
  /// Definition 5.10 case 1).
  BagMaxVec One() const { return BagMaxVec(length_, 1); }

  /// The ★ vector (0,1,1,...): multiplicity 1 from budget 1 on
  /// (Definition 5.10 case 2: facts available in the repair database).
  BagMaxVec Star() const { return FromCost(1); }

  /// Generalized ★: multiplicity 1 achievable from budget `cost` on.
  /// FromCost(0) == One() and FromCost(1) == Star(). Costs beyond the
  /// budget yield Zero() — the fact is unaffordable. This powers the
  /// weighted-repair extension (per-fact insertion costs).
  BagMaxVec FromCost(size_t cost) const {
    BagMaxVec out(length_, 0);
    for (size_t i = cost; i < length_; ++i) {
      out[i] = 1;
    }
    return out;
  }

  /// Max-plus convolution, Eq. (10).
  BagMaxVec Plus(const BagMaxVec& x, const BagMaxVec& y) const {
    HIERARQ_CHECK_EQ(x.size(), length_);
    HIERARQ_CHECK_EQ(y.size(), length_);
    BagMaxVec out(length_, 0);
    for (size_t i1 = 0; i1 < length_; ++i1) {
      for (size_t i2 = 0; i1 + i2 < length_; ++i2) {
        const uint64_t candidate = SatAddU64(x[i1], y[i2]);
        if (candidate > out[i1 + i2]) {
          out[i1 + i2] = candidate;
        }
      }
    }
    return out;
  }

  /// Max-times convolution, Eq. (11).
  BagMaxVec Times(const BagMaxVec& x, const BagMaxVec& y) const {
    HIERARQ_CHECK_EQ(x.size(), length_);
    HIERARQ_CHECK_EQ(y.size(), length_);
    BagMaxVec out(length_, 0);
    for (size_t i1 = 0; i1 < length_; ++i1) {
      for (size_t i2 = 0; i1 + i2 < length_; ++i2) {
        const uint64_t candidate = SatMulU64(x[i1], y[i2]);
        if (candidate > out[i1 + i2]) {
          out[i1 + i2] = candidate;
        }
      }
    }
    return out;
  }

  /// True iff `x` is monotone non-decreasing (the domain invariant of
  /// Definition 5.9; preserved by Plus/Times — see algebra tests).
  static bool IsMonotone(const BagMaxVec& x) {
    for (size_t i = 1; i < x.size(); ++i) {
      if (x[i] < x[i - 1]) {
        return false;
      }
    }
    return true;
  }

  /// True iff any entry saturated.
  static bool Saturated(const BagMaxVec& x) {
    for (uint64_t v : x) {
      if (v == ~uint64_t{0}) {
        return true;
      }
    }
    return false;
  }

  static std::string ToString(const BagMaxVec& x) {
    std::string out = "[";
    for (size_t i = 0; i < x.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += std::to_string(x[i]);
    }
    return out + "]";
  }

 private:
  size_t length_;
};

}  // namespace hierarq

#endif  // HIERARQ_ALGEBRA_BAGMAX_MONOID_H_
