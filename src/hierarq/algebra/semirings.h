#ifndef HIERARQ_ALGEBRA_SEMIRINGS_H_
#define HIERARQ_ALGEBRA_SEMIRINGS_H_

/// \file semirings.h
/// \brief Classical *distributive* (semiring) instantiations of the
/// 2-monoid interface.
///
/// Every commutative semiring is in particular a 2-monoid, so Algorithm 1
/// accepts these too. They serve three purposes in hierarq:
///  * the counting semiring computes Q(D) under bag-set semantics, which
///    cross-checks the join engine on hierarchical queries;
///  * the Boolean semiring evaluates Q(D) under set semantics;
///  * they are the experimental contrast for the paper's §1 remark: the
///    interesting instantiations (probability / bag-max / #Sat) are
///    exactly the non-distributive ones, and the distributivity tests in
///    tests/algebra_laws_test.cpp demonstrate the difference.

#include <algorithm>
#include <cstdint>
#include <limits>

#include "hierarq/algebra/bagmax_monoid.h"  // SatAddU64 / SatMulU64

namespace hierarq {

/// (𝔹, ∨, ∧): set-semantics query evaluation.
class BoolMonoid {
 public:
  using value_type = bool;

  bool Zero() const { return false; }
  bool One() const { return true; }
  bool Plus(bool a, bool b) const { return a || b; }
  bool Times(bool a, bool b) const { return a && b; }
};

/// (ℕ, +, ×) with saturation: bag-set counting — Algorithm 1 with 0/1
/// annotations computes the number of satisfying assignments Q(D).
class CountMonoid {
 public:
  using value_type = uint64_t;

  uint64_t Zero() const { return 0; }
  uint64_t One() const { return 1; }
  uint64_t Plus(uint64_t a, uint64_t b) const { return SatAddU64(a, b); }
  uint64_t Times(uint64_t a, uint64_t b) const { return SatMulU64(a, b); }
};

/// (ℝ ∪ {+∞}, min, +): the tropical semiring — minimum total weight of a
/// satisfying assignment (each fact weighted; absent = +∞).
class TropicalMonoid {
 public:
  using value_type = double;

  double Zero() const { return std::numeric_limits<double>::infinity(); }
  double One() const { return 0.0; }
  double Plus(double a, double b) const { return std::min(a, b); }
  double Times(double a, double b) const { return a + b; }
};

}  // namespace hierarq

#endif  // HIERARQ_ALGEBRA_SEMIRINGS_H_
