#ifndef HIERARQ_UTIL_INLINED_VECTOR_H_
#define HIERARQ_UTIL_INLINED_VECTOR_H_

/// \file inlined_vector.h
/// \brief A vector with small-buffer optimization for trivially copyable
/// element types.
///
/// Database tuples are short (query arity is a small constant), so storing
/// their values inline avoids one heap allocation per tuple. `InlinedVector`
/// supports exactly the operations the data layer needs; it intentionally
/// restricts `T` to trivially copyable types, which makes relocation a
/// memcpy and keeps the implementation small and obviously correct.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "hierarq/util/hash.h"
#include "hierarq/util/logging.h"

namespace hierarq {

template <typename T, size_t N>
class InlinedVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlinedVector requires trivially copyable elements");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlinedVector() = default;

  explicit InlinedVector(size_t count, const T& value = T()) {
    resize(count, value);
  }

  InlinedVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) {
      push_back(v);
    }
  }

  template <typename It>
  InlinedVector(It first, It last) {
    for (; first != last; ++first) {
      push_back(*first);
    }
  }

  InlinedVector(const InlinedVector& other) { CopyFrom(other); }

  InlinedVector& operator=(const InlinedVector& other) {
    if (this != &other) {
      Clear();
      CopyFrom(other);
    }
    return *this;
  }

  InlinedVector(InlinedVector&& other) noexcept { MoveFrom(other); }

  InlinedVector& operator=(InlinedVector&& other) noexcept {
    if (this != &other) {
      Clear();
      MoveFrom(other);
    }
    return *this;
  }

  ~InlinedVector() { Clear(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  /// True while elements live in the inline buffer (no heap allocation).
  bool is_inline() const { return data_ == InlineData(); }

  T* data() { return data_; }
  const T* data() const { return data_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  T& operator[](size_t i) {
    HIERARQ_CHECK_LT(i, size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    HIERARQ_CHECK_LT(i, size_);
    return data_[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    data_[size_++] = value;
  }

  void pop_back() {
    HIERARQ_CHECK_GT(size_, 0u);
    --size_;
  }

  void clear() { size_ = 0; }

  void resize(size_t count, const T& value = T()) {
    reserve(count);
    for (size_t i = size_; i < count; ++i) {
      data_[i] = value;
    }
    size_ = count;
  }

  void reserve(size_t count) {
    if (count > capacity_) {
      Grow(std::max(count, capacity_ * 2));
    }
  }

  /// Removes the element at `index`, preserving the order of the rest.
  void erase_at(size_t index) {
    HIERARQ_CHECK_LT(index, size_);
    std::memmove(data_ + index, data_ + index + 1,
                 (size_ - index - 1) * sizeof(T));
    --size_;
  }

  bool operator==(const InlinedVector& other) const {
    if (size_ != other.size_) {
      return false;
    }
    return std::equal(begin(), end(), other.begin());
  }
  bool operator!=(const InlinedVector& other) const {
    return !(*this == other);
  }

  /// Lexicographic order, so InlinedVector can key ordered containers.
  bool operator<(const InlinedVector& other) const {
    return std::lexicographical_compare(begin(), end(), other.begin(),
                                        other.end());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineData() const {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void Grow(size_t new_capacity) {
    T* fresh = new T[new_capacity];
    std::memcpy(fresh, data_, size_ * sizeof(T));
    if (!is_inline()) {
      delete[] data_;
    }
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void Clear() {
    if (!is_inline()) {
      delete[] data_;
    }
    data_ = InlineData();
    capacity_ = N;
    size_ = 0;
  }

  void CopyFrom(const InlinedVector& other) {
    reserve(other.size_);
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void MoveFrom(InlinedVector& other) {
    if (other.is_inline()) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlineData();
      other.capacity_ = N;
      other.size_ = 0;
    }
    other.clear();
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t capacity_ = N;
  size_t size_ = 0;
};

/// Hasher so InlinedVector can key unordered containers.
template <typename T, size_t N>
struct InlinedVectorHash {
  size_t operator()(const InlinedVector<T, N>& v) const {
    return static_cast<size_t>(HashRange(v.begin(), v.end()));
  }
};

}  // namespace hierarq

#endif  // HIERARQ_UTIL_INLINED_VECTOR_H_
