#ifndef HIERARQ_UTIL_RESULT_H_
#define HIERARQ_UTIL_RESULT_H_

/// \file result.h
/// \brief `Result<T>` — the value-or-error companion of `Status`, modeled on
/// `arrow::Result`. A `Result<T>` holds either a `T` or an error `Status`
/// (never an OK status without a value).

#include <cassert>
#include <utility>
#include <variant>

#include "hierarq/util/status.h"

namespace hierarq {

template <typename T>
class Result {
 public:
  using value_type = T;

  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from an error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status without a value");
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the stored error otherwise.
  Status status() const {
    if (ok()) {
      return Status::OK();
    }
    return std::get<Status>(repr_);
  }

  /// Access the held value. Precondition: `ok()`.
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on error Result");
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on error Result");
    return std::move(std::get<T>(repr_));
  }

  /// Shorthands matching arrow::Result.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` when this result is an error.
  T ValueOr(T fallback) const {
    if (ok()) {
      return std::get<T>(repr_);
    }
    return fallback;
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace hierarq

/// Propagates the error of a `Result` expression or assigns its value:
/// `HIERARQ_ASSIGN_OR_RETURN(auto plan, BuildPlan(query));`
#define HIERARQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).ValueOrDie()

#define HIERARQ_ASSIGN_OR_RETURN(lhs, expr)                                    \
  HIERARQ_ASSIGN_OR_RETURN_IMPL(                                               \
      HIERARQ_CONCAT_(_hierarq_result__, __LINE__), lhs, expr)

#define HIERARQ_CONCAT_INNER_(a, b) a##b
#define HIERARQ_CONCAT_(a, b) HIERARQ_CONCAT_INNER_(a, b)

#endif  // HIERARQ_UTIL_RESULT_H_
