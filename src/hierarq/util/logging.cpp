#include "hierarq/util/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace hierarq {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    // Keep only the basename to avoid build-tree paths in logs.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace hierarq
