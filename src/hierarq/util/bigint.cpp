#include "hierarq/util/bigint.h"

#include <cmath>
#include <limits>
#include <ostream>

#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

constexpr uint64_t kDecimalChunk = 10000000000000000000ULL;  // 10^19
constexpr int kDecimalChunkDigits = 19;

int CountLeadingZeros(uint64_t x) {
  HIERARQ_CHECK_NE(x, 0u);
  return __builtin_clzll(x);
}

}  // namespace

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(value);
  }
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

Result<BigUint> BigUint::FromString(std::string_view text) {
  if (text.empty()) {
    return Status::ParseError("empty BigUint literal");
  }
  BigUint out;
  const BigUint ten(10);
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::ParseError(std::string("invalid digit in BigUint: '") +
                                c + "'");
    }
    out = out * ten + BigUint(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

BigUint BigUint::Factorial(uint64_t n) {
  BigUint out(1);
  for (uint64_t i = 2; i <= n; ++i) {
    out *= BigUint(i);
  }
  return out;
}

BigUint BigUint::Binomial(uint64_t n, uint64_t k) {
  if (k > n) {
    return BigUint();
  }
  k = std::min(k, n - k);
  // Multiply then divide stepwise; each intermediate is an exact binomial
  // scaled by an integer, so the small division is always exact.
  BigUint out(1);
  for (uint64_t i = 1; i <= k; ++i) {
    out *= BigUint(n - k + i);
    uint64_t rem = 0;
    out = out.DivModSmall(i, &rem);
    HIERARQ_CHECK_EQ(rem, 0u);
  }
  return out;
}

BigUint BigUint::PowerOfTwo(uint64_t k) {
  return BigUint(1) << k;
}

size_t BigUint::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  return limbs_.size() * 64 -
         static_cast<size_t>(CountLeadingZeros(limbs_.back()));
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUint& BigUint::operator+=(const BigUint& other) {
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  unsigned __int128 carry = 0;
  for (size_t i = 0; i < n; ++i) {
    unsigned __int128 sum = carry + limbs_[i];
    if (i < other.limbs_.size()) {
      sum += other.limbs_[i];
    }
    limbs_[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry != 0) {
    limbs_.push_back(static_cast<uint64_t>(carry));
  }
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& other) {
  HIERARQ_CHECK_GE(Compare(other), 0) << "BigUint subtraction underflow";
  unsigned __int128 borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const unsigned __int128 need = static_cast<unsigned __int128>(rhs) + borrow;
    if (limbs_[i] >= need) {
      limbs_[i] = static_cast<uint64_t>(limbs_[i] - need);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<uint64_t>(
          (static_cast<unsigned __int128>(1) << 64) + limbs_[i] - need);
      borrow = 1;
    }
  }
  Normalize();
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  *this = *this * other;
  return *this;
}

BigUint BigUint::operator+(const BigUint& other) const {
  BigUint out = *this;
  out += other;
  return out;
}

BigUint BigUint::operator-(const BigUint& other) const {
  BigUint out = *this;
  out -= other;
  return out;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (IsZero() || other.IsZero()) {
    return BigUint();
  }
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(limbs_[i]) * other.limbs_[j] +
          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] += carry;
  }
  out.Normalize();
  return out;
}

BigUint BigUint::operator<<(uint64_t bits) const {
  if (IsZero() || bits == 0) {
    BigUint out = *this;
    return out;
  }
  const size_t limb_shift = bits / 64;
  const unsigned bit_shift = static_cast<unsigned>(bits % 64);
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i]
                                                 : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigUint BigUint::operator>>(uint64_t bits) const {
  const size_t limb_shift = bits / 64;
  const unsigned bit_shift = static_cast<unsigned>(bits % 64);
  if (limb_shift >= limbs_.size()) {
    return BigUint();
  }
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigUint BigUint::DivModSmall(uint64_t divisor, uint64_t* remainder) const {
  HIERARQ_CHECK_NE(divisor, 0u);
  BigUint quotient;
  quotient.limbs_.assign(limbs_.size(), 0);
  unsigned __int128 rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    const unsigned __int128 cur = (rem << 64) | limbs_[i];
    quotient.limbs_[i] = static_cast<uint64_t>(cur / divisor);
    rem = cur % divisor;
  }
  quotient.Normalize();
  *remainder = static_cast<uint64_t>(rem);
  return quotient;
}

BigUint BigUint::Gcd(BigUint a, BigUint b) {
  if (a.IsZero()) {
    return b;
  }
  if (b.IsZero()) {
    return a;
  }
  // Binary GCD: strip common factors of two, then subtract-and-shift.
  uint64_t shift = 0;
  while ((a.limbs_[0] & 1) == 0 && (b.limbs_[0] & 1) == 0) {
    a = a >> 1;
    b = b >> 1;
    ++shift;
  }
  while ((a.limbs_[0] & 1) == 0) {
    a = a >> 1;
  }
  while (!b.IsZero()) {
    while ((b.limbs_[0] & 1) == 0) {
      b = b >> 1;
    }
    if (a > b) {
      std::swap(a, b);
    }
    b -= a;
  }
  return a << shift;
}

std::string BigUint::ToString() const {
  if (IsZero()) {
    return "0";
  }
  // Peel 19 decimal digits at a time from the least-significant end.
  std::vector<uint64_t> chunks;
  BigUint value = *this;
  while (!value.IsZero()) {
    uint64_t rem = 0;
    value = value.DivModSmall(kDecimalChunk, &rem);
    chunks.push_back(rem);
  }
  std::string out = std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string piece = std::to_string(chunks[i]);
    out += std::string(kDecimalChunkDigits - piece.size(), '0');
    out += piece;
  }
  return out;
}

void BigUint::Frexp(double* mantissa, int64_t* exponent) const {
  if (IsZero()) {
    *mantissa = 0.0;
    *exponent = 0;
    return;
  }
  const size_t bits = BitLength();
  // Collect the top (up to) 64 bits exactly.
  uint64_t top;
  if (bits <= 64) {
    top = limbs_[0];
    *exponent = 0;
  } else {
    const BigUint shifted = *this >> (bits - 64);
    top = shifted.limbs_[0];
    *exponent = static_cast<int64_t>(bits - 64);
  }
  int exp_local = 0;
  *mantissa = std::frexp(static_cast<double>(top), &exp_local);
  *exponent += exp_local;
}

double BigUint::ToDouble() const {
  double mantissa = 0.0;
  int64_t exponent = 0;
  Frexp(&mantissa, &exponent);
  if (exponent > 1100) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(mantissa, static_cast<int>(exponent));
}

// ---------------------------------------------------------------------------
// BigInt
// ---------------------------------------------------------------------------

BigInt::BigInt(int64_t value) {
  if (value < 0) {
    negative_ = true;
    // Avoid UB on INT64_MIN: negate in unsigned space.
    magnitude_ = BigUint(~static_cast<uint64_t>(value) + 1);
  } else {
    magnitude_ = BigUint(static_cast<uint64_t>(value));
  }
}

BigInt::BigInt(BigUint magnitude, bool negative)
    : magnitude_(std::move(magnitude)), negative_(negative) {
  if (magnitude_.IsZero()) {
    negative_ = false;
  }
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  bool negative = false;
  if (!text.empty() && (text[0] == '-' || text[0] == '+')) {
    negative = text[0] == '-';
    text.remove_prefix(1);
  }
  HIERARQ_ASSIGN_OR_RETURN(BigUint mag, BigUint::FromString(text));
  return BigInt(std::move(mag), negative);
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) {
    return negative_ ? -1 : 1;
  }
  const int mag = magnitude_.Compare(other.magnitude_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::operator-() const {
  return BigInt(magnitude_, !negative_);
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (negative_ == other.negative_) {
    return BigInt(magnitude_ + other.magnitude_, negative_);
  }
  const int cmp = magnitude_.Compare(other.magnitude_);
  if (cmp == 0) {
    return BigInt();
  }
  if (cmp > 0) {
    return BigInt(magnitude_ - other.magnitude_, negative_);
  }
  return BigInt(other.magnitude_ - magnitude_, other.negative_);
}

BigInt BigInt::operator-(const BigInt& other) const {
  return *this + (-other);
}

BigInt BigInt::operator*(const BigInt& other) const {
  return BigInt(magnitude_ * other.magnitude_, negative_ != other.negative_);
}

BigInt& BigInt::operator+=(const BigInt& other) {
  *this = *this + other;
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  *this = *this - other;
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  *this = *this * other;
  return *this;
}

std::string BigInt::ToString() const {
  std::string out = magnitude_.ToString();
  if (negative_) {
    out.insert(out.begin(), '-');
  }
  return out;
}

double BigInt::ToDouble() const {
  const double mag = magnitude_.ToDouble();
  return negative_ ? -mag : mag;
}

std::ostream& operator<<(std::ostream& os, const BigUint& value) {
  return os << value.ToString();
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace hierarq
