#ifndef HIERARQ_UTIL_RANDOM_H_
#define HIERARQ_UTIL_RANDOM_H_

/// \file random.h
/// \brief Deterministic random number generation for reproducible workloads.
///
/// All hierarq generators take an explicit `Rng&` so that every experiment is
/// reproducible from a single 64-bit seed. The generator is xoshiro256**,
/// seeded via splitmix64 — both public-domain algorithms by Blackman & Vigna.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hierarq {

/// xoshiro256** — a small, fast, high-quality 64-bit PRNG.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from one 64-bit seed using splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Returns the next 64 pseudo-random bits.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  /// Uses Lemire's nearly-divisionless bounded sampling.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (Floyd's algorithm
  /// style via partial shuffle). Precondition: k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with skew `s`.
/// Rank r is drawn with probability proportional to 1/(r+1)^s.
/// Built once (O(n) precomputation of the CDF), sampled in O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double skew);

  /// Draws one rank.
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }
  double skew() const { return skew_; }

 private:
  std::vector<double> cdf_;
  double skew_;
};

}  // namespace hierarq

#endif  // HIERARQ_UTIL_RANDOM_H_
