#ifndef HIERARQ_UTIL_BIGINT_H_
#define HIERARQ_UTIL_BIGINT_H_

/// \file bigint.h
/// \brief Arbitrary-precision integers.
///
/// The #Sat 2-monoid (paper Definition 5.14) counts subsets of the endogenous
/// database: counts reach binomial(|Dn|, k), which overflows `uint64_t`
/// already around |Dn| ≈ 68. `BigUint`/`BigInt` provide exact arithmetic for
/// the counting monoid and for exact Shapley values (whose denominators are
/// |Dn|! — astronomically large). Representation: little-endian vector of
/// 64-bit limbs with no trailing zero limbs (canonical; zero = no limbs).
///
/// Only the operations hierarq needs are implemented: add, subtract,
/// schoolbook multiply, bit shifts, binary GCD, small-divisor divmod (for
/// decimal printing), comparison, and exponent-tracked conversion to double.

#include <cstdint>
#include <string>
#include <vector>

#include "hierarq/util/result.h"

namespace hierarq {

/// Arbitrary-precision unsigned integer.
class BigUint {
 public:
  /// Constructs zero.
  BigUint() = default;
  /// Constructs from a machine word.
  explicit BigUint(uint64_t value);

  /// Parses a decimal string of digits ("0", "12345...").
  static Result<BigUint> FromString(std::string_view text);
  /// n! for small n (n fits memory; intended for Shapley coefficients).
  static BigUint Factorial(uint64_t n);
  /// binomial(n, k); returns 0 when k > n.
  static BigUint Binomial(uint64_t n, uint64_t k);
  /// 2^k.
  static BigUint PowerOfTwo(uint64_t k);

  bool IsZero() const { return limbs_.empty(); }
  /// True iff the value fits in a uint64_t.
  bool FitsUint64() const { return limbs_.size() <= 1; }
  /// The low 64 bits (i.e. value mod 2^64).
  uint64_t Low64() const { return limbs_.empty() ? 0 : limbs_[0]; }
  /// Number of significant bits (0 for zero).
  size_t BitLength() const;
  /// Number of limbs (for complexity accounting in tests).
  size_t LimbCount() const { return limbs_.size(); }

  /// Three-way comparison: negative/zero/positive as *this <,==,> other.
  int Compare(const BigUint& other) const;

  BigUint operator+(const BigUint& other) const;
  /// Precondition: *this >= other (checked).
  BigUint operator-(const BigUint& other) const;
  BigUint operator*(const BigUint& other) const;
  BigUint operator<<(uint64_t bits) const;
  BigUint operator>>(uint64_t bits) const;

  BigUint& operator+=(const BigUint& other);
  BigUint& operator-=(const BigUint& other);
  BigUint& operator*=(const BigUint& other);

  bool operator==(const BigUint& other) const { return Compare(other) == 0; }
  bool operator!=(const BigUint& other) const { return Compare(other) != 0; }
  bool operator<(const BigUint& other) const { return Compare(other) < 0; }
  bool operator<=(const BigUint& other) const { return Compare(other) <= 0; }
  bool operator>(const BigUint& other) const { return Compare(other) > 0; }
  bool operator>=(const BigUint& other) const { return Compare(other) >= 0; }

  /// Divides by a machine word; returns the quotient and sets `*remainder`.
  /// Precondition: divisor != 0.
  BigUint DivModSmall(uint64_t divisor, uint64_t* remainder) const;

  /// Greatest common divisor (binary GCD: shift/subtract only).
  static BigUint Gcd(BigUint a, BigUint b);

  /// Decimal rendering.
  std::string ToString() const;

  /// Lossy conversion: nearest double, +inf if the exponent overflows.
  double ToDouble() const;

  /// Writes the value as `mantissa * 2^exponent` with mantissa in [0.5, 1)
  /// (or mantissa = 0). Exact in the top 64 bits. Used to build floating
  /// quotients of astronomically large numerators/denominators.
  void Frexp(double* mantissa, int64_t* exponent) const;

 private:
  void Normalize();

  std::vector<uint64_t> limbs_;
};

/// Arbitrary-precision signed integer: sign-magnitude over BigUint.
class BigInt {
 public:
  BigInt() = default;
  BigInt(int64_t value);  // NOLINT(runtime/explicit): numeric literal use.
  explicit BigInt(BigUint magnitude, bool negative = false);

  static Result<BigInt> FromString(std::string_view text);

  bool IsZero() const { return magnitude_.IsZero(); }
  bool IsNegative() const { return negative_; }
  const BigUint& Magnitude() const { return magnitude_; }

  int Compare(const BigInt& other) const;

  BigInt operator-() const;
  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  std::string ToString() const;
  double ToDouble() const;

 private:
  BigUint magnitude_;
  bool negative_ = false;  // Never true for zero (canonical form).
};

std::ostream& operator<<(std::ostream& os, const BigUint& value);
std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace hierarq

#endif  // HIERARQ_UTIL_BIGINT_H_
