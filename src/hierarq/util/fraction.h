#ifndef HIERARQ_UTIL_FRACTION_H_
#define HIERARQ_UTIL_FRACTION_H_

/// \file fraction.h
/// \brief Exact rational numbers over BigInt.
///
/// Shapley values are rationals with denominator |Dn|! (paper Eq. (14)); a
/// `Fraction` represents them exactly. The denominator is kept positive and
/// the fraction reduced with binary GCD after every operation, so equality is
/// structural.

#include <string>

#include "hierarq/util/bigint.h"

namespace hierarq {

class Fraction {
 public:
  /// Constructs 0/1.
  Fraction() : numerator_(0), denominator_(BigUint(1)) {}
  /// Constructs n/1.
  Fraction(int64_t value)  // NOLINT(runtime/explicit): numeric literal use.
      : numerator_(value), denominator_(BigUint(1)) {}
  /// Constructs numerator/denominator (denominator must be nonzero; sign is
  /// normalized into the numerator and the fraction reduced).
  Fraction(BigInt numerator, BigInt denominator);

  /// num/den from machine integers. Precondition: den != 0.
  static Fraction Of(int64_t num, int64_t den);

  const BigInt& numerator() const { return numerator_; }
  const BigUint& denominator() const { return denominator_; }

  bool IsZero() const { return numerator_.IsZero(); }
  bool IsNegative() const { return numerator_.IsNegative(); }

  Fraction operator-() const;
  Fraction operator+(const Fraction& other) const;
  Fraction operator-(const Fraction& other) const;
  Fraction operator*(const Fraction& other) const;
  /// Precondition: other != 0 (checked).
  Fraction operator/(const Fraction& other) const;

  Fraction& operator+=(const Fraction& other);
  Fraction& operator-=(const Fraction& other);
  Fraction& operator*=(const Fraction& other);
  Fraction& operator/=(const Fraction& other);

  int Compare(const Fraction& other) const;
  bool operator==(const Fraction& other) const { return Compare(other) == 0; }
  bool operator!=(const Fraction& other) const { return Compare(other) != 0; }
  bool operator<(const Fraction& other) const { return Compare(other) < 0; }
  bool operator<=(const Fraction& other) const { return Compare(other) <= 0; }
  bool operator>(const Fraction& other) const { return Compare(other) > 0; }
  bool operator>=(const Fraction& other) const { return Compare(other) >= 0; }

  /// "num/den" (or "num" when den == 1).
  std::string ToString() const;

  /// Nearest double, computed with exponent tracking so that e.g.
  /// (170! / 171!) converts correctly even though both factorials overflow.
  double ToDouble() const;

 private:
  void Reduce();

  BigInt numerator_;
  BigUint denominator_;  // Always > 0.
};

std::ostream& operator<<(std::ostream& os, const Fraction& value);

}  // namespace hierarq

#endif  // HIERARQ_UTIL_FRACTION_H_
