#include "hierarq/util/worker_pool.h"

#include <algorithm>
#include <latch>
#include <utility>

#include "hierarq/obs/metrics.h"
#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

// Global pool metrics, summed across every WorkerPool in the process
// (service fan-out pools and evaluator-owned intra-query pools alike).
// Resolved once into statics so the per-task cost is one relaxed add.
obs::Counter* TasksExecutedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("workerpool.tasks_executed");
  return counter;
}

obs::Counter* LatchWaitsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("workerpool.latch_waits");
  return counter;
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* const gauge =
      obs::MetricsRegistry::Global().GetGauge("workerpool.queue_depth");
  return gauge;
}

}  // namespace

WorkerPool::WorkerPool(size_t num_workers) {
  const size_t n = std::max<size_t>(1, num_workers);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // std::jthread joins on destruction; WorkerLoop drains the queue first.
}

void WorkerPool::Submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HIERARQ_CHECK(!stopping_) << "Submit on a stopping WorkerPool";
    queue_.push_back(std::move(task));
  }
  QueueDepthGauge()->Add(1);
  cv_.notify_one();
}

void WorkerPool::WorkerLoop(size_t index) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ set and every submitted task has run.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepthGauge()->Add(-1);
    task(index);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    TasksExecutedCounter()->Add();
  }
}

void WorkerPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);
  LatchWaitsCounter()->Add();
  // The latch synchronizes the workers' writes (results stored by `fn`)
  // with the caller's reads after wait() returns.
  std::latch done(static_cast<std::ptrdiff_t>(n));
  for (size_t i = 0; i < n; ++i) {
    Submit([&fn, &done, i](size_t worker) {
      fn(worker, i);
      done.count_down();
    });
  }
  done.wait();
}

}  // namespace hierarq
