#include "hierarq/util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace hierarq {

namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsSpace(s[begin])) {
    ++begin;
  }
  while (end > begin && IsSpace(s[end - 1])) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) {
  return std::string(TrimView(s));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitTopLevel(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  int depth = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      out.push_back(Trim(s.substr(start, i - start)));
      start = i + 1;
      continue;
    }
    if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      --depth;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) {
    return Status::ParseError("empty integer literal");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer literal out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view s) {
  s = TrimView(s);
  if (s.empty()) {
    return Status::ParseError("empty float literal");
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("float literal out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid float literal: " + buf);
  }
  return value;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) {
    return false;
  }
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '\'')) {
      return false;
    }
  }
  return true;
}

bool LooksLikeVariable(std::string_view s) {
  return IsIdentifier(s) && std::isupper(static_cast<unsigned char>(s[0]));
}

}  // namespace hierarq
