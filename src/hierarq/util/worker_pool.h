#ifndef HIERARQ_UTIL_WORKER_POOL_H_
#define HIERARQ_UTIL_WORKER_POOL_H_

/// \file worker_pool.h
/// \brief A fixed-size worker pool over an MPMC task queue.
///
/// The engine's execution substrate, shared by the service layer's
/// across-query fan-out (service/eval_service.h) and the execution core's
/// intra-query shard parallelism (core/parallel.h): a fixed set of
/// `std::jthread` workers drains one multi-producer/multi-consumer queue
/// (any client thread submits; any worker picks up). Tasks receive the
/// index of the worker running them — that index is how the service hands
/// each task a *worker-owned* `Evaluator` (shared plan cache, private
/// scratch tables) without any per-task locking: a worker runs one task
/// at a time, so its index is an exclusive token for its scratch.
///
/// The pool is deliberately minimal — no priorities, no stealing, no
/// futures. Completion is the caller's concern (`ParallelFor` bundles the
/// common submit-all-then-wait pattern with a `std::latch`), and tasks
/// must not throw: the codebase reports errors through Status/Result, and
/// an exception escaping a task would terminate via the jthread.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hierarq {

class WorkerPool {
 public:
  /// A unit of work; invoked with the index (in [0, num_workers())) of the
  /// worker thread executing it.
  using Task = std::function<void(size_t worker_index)>;

  /// Starts `num_workers` threads (clamped to at least 1).
  explicit WorkerPool(size_t num_workers);

  /// Drains the queue — every task submitted before destruction runs —
  /// then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues `task`. Thread-safe; never blocks on queue capacity.
  void Submit(Task task);

  /// Runs `fn(worker_index, i)` for every i in [0, n) across the pool and
  /// blocks until all n invocations complete. Must be called from outside
  /// the pool: a worker calling it would wait on work that needs its own
  /// thread. Safe to call concurrently from multiple client threads —
  /// their tasks interleave in the shared queue.
  void ParallelFor(size_t n,
                   const std::function<void(size_t worker_index,
                                            size_t index)>& fn);

  /// How many ParallelFor barriers this pool has run so far. Each call is
  /// one submit-all-then-latch round trip, so the counter measures the
  /// per-step synchronization cost the fused Rule 1/Rule 2 phases exist
  /// to shrink (tests assert a fused parallel step takes exactly one).
  size_t parallel_for_calls() const {
    return parallel_for_calls_.load(std::memory_order_relaxed);
  }

  /// Total tasks workers have completed.
  size_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Tasks currently waiting in the queue (not the one each worker may be
  /// running). A snapshot — the admission-control signal the future
  /// server's queue-depth limits will read.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  void WorkerLoop(size_t index);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  std::atomic<size_t> parallel_for_calls_{0};
  std::atomic<size_t> tasks_executed_{0};
  bool stopping_ = false;
  std::vector<std::jthread> workers_;  // Last member: destroyed (joined) first.
};

}  // namespace hierarq

#endif  // HIERARQ_UTIL_WORKER_POOL_H_
