#ifndef HIERARQ_UTIL_HASH_H_
#define HIERARQ_UTIL_HASH_H_

/// \file hash.h
/// \brief Hash helpers: 64-bit mixing, combination, and hashers for the
/// aggregate types hierarq keys its hash tables on (tuples of value ids).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hierarq {

/// Finalizer from MurmurHash3 (fmix64): a cheap, well-distributed 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines an existing seed with the hash of one more value
/// (boost::hash_combine shape, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

/// Seed of `HashRange`. Exposed so column-major stores (data/columnar.h)
/// can fold per-row hashes one column at a time and still land on exactly
/// the hash a row-major `HashRange` over the same values produces — the
/// row-id index and tuple-keyed probes must agree on every key's hash.
constexpr uint64_t kHashRangeSeed = 0x51ed2701a9a1e6f5ULL;

/// Hashes a contiguous range of integral values.
template <typename It>
uint64_t HashRange(It first, It last) {
  uint64_t seed = kHashRangeSeed;
  for (; first != last; ++first) {
    seed = HashCombine(seed, static_cast<uint64_t>(*first));
  }
  return seed;
}

/// std::hash-compatible hasher for vectors of integral ids.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& v) const {
    return static_cast<size_t>(HashRange(v.begin(), v.end()));
  }
};

/// std::hash-compatible hasher for pairs of integral ids.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<size_t>(
        HashCombine(Mix64(static_cast<uint64_t>(p.first)),
                    static_cast<uint64_t>(p.second)));
  }
};

}  // namespace hierarq

#endif  // HIERARQ_UTIL_HASH_H_
