#include "hierarq/util/random.h"

#include <cmath>

#include "hierarq/util/logging.h"

namespace hierarq {

namespace {

inline uint64_t RotL(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64: used only for seeding the main generator.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HIERARQ_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  // Lemire's multiply-then-reject method (unbiased).
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < range) {
    const uint64_t threshold = (0 - range) % range;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int64_t>(m >> 64);
}

double Rng::UniformDouble() {
  // 53 top bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  HIERARQ_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index array; O(n) memory, O(n + k) time.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) {
    indices[i] = i;
  }
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(
        UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double skew) : skew_(skew) {
  HIERARQ_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // Guard against floating-point round-off.
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace hierarq
