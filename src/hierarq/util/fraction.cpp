#include "hierarq/util/fraction.h"

#include <cmath>
#include <ostream>

#include "hierarq/util/logging.h"

namespace hierarq {

Fraction::Fraction(BigInt numerator, BigInt denominator) {
  HIERARQ_CHECK(!denominator.IsZero()) << "Fraction with zero denominator";
  const bool negative =
      numerator.IsNegative() != denominator.IsNegative() &&
      !numerator.IsZero();
  numerator_ = BigInt(numerator.Magnitude(), negative);
  denominator_ = denominator.Magnitude();
  Reduce();
}

Fraction Fraction::Of(int64_t num, int64_t den) {
  return Fraction(BigInt(num), BigInt(den));
}

void Fraction::Reduce() {
  if (numerator_.IsZero()) {
    denominator_ = BigUint(1);
    return;
  }
  const BigUint g = BigUint::Gcd(numerator_.Magnitude(), denominator_);
  if (g == BigUint(1)) {
    return;
  }
  // Exact division by the GCD via repeated small division is not available
  // (no general long division), so divide via the identity
  // a / g with binary GCD structure: we instead rebuild using DivModSmall
  // when g fits a word, else strip common powers of two and fall back to
  // word-chunked division.
  auto divide_exact = [](const BigUint& value, const BigUint& divisor) {
    // General exact division via schoolbook long division in base 2:
    // O(bits^2 / 64) worst case, acceptable for Shapley coefficient sizes.
    BigUint quotient;
    BigUint remainder;
    const size_t bits = value.BitLength();
    for (size_t i = bits; i-- > 0;) {
      remainder = remainder << 1;
      if (((value >> i).Low64() & 1) != 0) {
        remainder += BigUint(1);
      }
      quotient = quotient << 1;
      if (remainder >= divisor) {
        remainder -= divisor;
        quotient += BigUint(1);
      }
    }
    HIERARQ_CHECK(remainder.IsZero()) << "non-exact division during Reduce";
    return quotient;
  };
  BigUint num_mag;
  BigUint den_mag;
  if (g.FitsUint64()) {
    uint64_t rem = 0;
    num_mag = numerator_.Magnitude().DivModSmall(g.Low64(), &rem);
    HIERARQ_CHECK_EQ(rem, 0u);
    den_mag = denominator_.DivModSmall(g.Low64(), &rem);
    HIERARQ_CHECK_EQ(rem, 0u);
  } else {
    num_mag = divide_exact(numerator_.Magnitude(), g);
    den_mag = divide_exact(denominator_, g);
  }
  numerator_ = BigInt(std::move(num_mag), numerator_.IsNegative());
  denominator_ = std::move(den_mag);
}

Fraction Fraction::operator-() const {
  Fraction out = *this;
  out.numerator_ = -out.numerator_;
  return out;
}

Fraction Fraction::operator+(const Fraction& other) const {
  // a/b + c/d = (a*d + c*b) / (b*d), then reduce.
  BigInt num = numerator_ * BigInt(other.denominator_) +
               other.numerator_ * BigInt(denominator_);
  BigInt den(denominator_ * other.denominator_);
  return Fraction(std::move(num), std::move(den));
}

Fraction Fraction::operator-(const Fraction& other) const {
  return *this + (-other);
}

Fraction Fraction::operator*(const Fraction& other) const {
  BigInt num = numerator_ * other.numerator_;
  BigInt den(denominator_ * other.denominator_);
  return Fraction(std::move(num), std::move(den));
}

Fraction Fraction::operator/(const Fraction& other) const {
  HIERARQ_CHECK(!other.IsZero()) << "Fraction division by zero";
  BigInt num = numerator_ * BigInt(other.denominator_);
  BigInt den = BigInt(denominator_) * other.numerator_;
  return Fraction(std::move(num), std::move(den));
}

Fraction& Fraction::operator+=(const Fraction& other) {
  *this = *this + other;
  return *this;
}
Fraction& Fraction::operator-=(const Fraction& other) {
  *this = *this - other;
  return *this;
}
Fraction& Fraction::operator*=(const Fraction& other) {
  *this = *this * other;
  return *this;
}
Fraction& Fraction::operator/=(const Fraction& other) {
  *this = *this / other;
  return *this;
}

int Fraction::Compare(const Fraction& other) const {
  // Cross-multiplied comparison avoids needing division.
  const BigInt lhs = numerator_ * BigInt(other.denominator_);
  const BigInt rhs = other.numerator_ * BigInt(denominator_);
  return lhs.Compare(rhs);
}

std::string Fraction::ToString() const {
  if (denominator_ == BigUint(1)) {
    return numerator_.ToString();
  }
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double Fraction::ToDouble() const {
  if (numerator_.IsZero()) {
    return 0.0;
  }
  double num_mantissa = 0.0;
  double den_mantissa = 0.0;
  int64_t num_exp = 0;
  int64_t den_exp = 0;
  numerator_.Magnitude().Frexp(&num_mantissa, &num_exp);
  denominator_.Frexp(&den_mantissa, &den_exp);
  const double magnitude = std::ldexp(num_mantissa / den_mantissa,
                                      static_cast<int>(num_exp - den_exp));
  return numerator_.IsNegative() ? -magnitude : magnitude;
}

std::ostream& operator<<(std::ostream& os, const Fraction& value) {
  return os << value.ToString();
}

}  // namespace hierarq
