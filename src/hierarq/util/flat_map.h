#ifndef HIERARQ_UTIL_FLAT_MAP_H_
#define HIERARQ_UTIL_FLAT_MAP_H_

/// \file flat_map.h
/// \brief `FlatMap` — an open-addressing hash map with robin-hood probing,
/// built for the Algorithm 1 hot path (data/annotated.h).
///
/// `std::unordered_map` pays one heap node per entry and chases a pointer
/// per probe; Algorithm 1 touches every stored fact of every intermediate
/// relation once per elimination step, so those cache misses dominate the
/// O(|D|) monoid-operation bound in wall-clock terms. FlatMap stores
/// entries contiguously in one slot array (keys — short inlined tuples —
/// live next to their probe metadata), resolves collisions with robin-hood
/// displacement to keep probe sequences short and variance low, and
/// exposes a combined `FindOrInsert` so callers pay a single probe for the
/// find-else-insert pattern of Rule 1 (⊕-merge) and Rule 2 (union of
/// supports).
///
/// Deliberate restrictions, matching how annotated relations are used:
///   * per-entry `Erase` uses robin-hood backward-shift deletion, so the
///     table never carries tombstones and probe sequences stay as short as
///     if the key had never been inserted (the incremental subsystem,
///     incremental/incremental_view.h, deletes single facts from
///     materialized relations; batch evaluation still drops intermediates
///     wholesale via `Clear()`);
///   * `Clear()` keeps the slot array allocated, so a table reused across
///     evaluations (core/evaluator.h) reaches steady state with zero
///     allocations;
///   * pointers returned by `Find`/`FindOrInsert` are invalidated by the
///     next mutating call, like iterators of any rehashing table.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "hierarq/util/logging.h"

namespace hierarq {

template <typename Key, typename Mapped, typename Hash>
class FlatMap {
 public:
  /// One stored entry; named like std::pair so structured bindings and
  /// `.first`/`.second` code work against both FlatMap and unordered_map.
  struct Entry {
    Key first;
    Mapped second;
  };

  class const_iterator {
   public:
    const_iterator(const FlatMap* map, size_t index)
        : map_(map), index_(index) {
      SkipEmpty();
    }

    const Entry& operator*() const { return map_->entries_[index_]; }
    const Entry* operator->() const { return &map_->entries_[index_]; }

    const_iterator& operator++() {
      ++index_;
      SkipEmpty();
      return *this;
    }

    bool operator==(const const_iterator& other) const {
      return index_ == other.index_;
    }
    bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    void SkipEmpty() {
      while (index_ < map_->meta_.size() && map_->meta_[index_] == 0) {
        ++index_;
      }
    }

    const FlatMap* map_;
    size_t index_;
  };

  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of slots currently allocated (power of two, or 0 before the
  /// first insert).
  size_t capacity() const { return meta_.size(); }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, meta_.size()); }

  /// Returns the mapped value of `key`, or nullptr when absent.
  const Mapped* Find(const Key& key) const {
    if (size_ == 0) {
      return nullptr;
    }
    return FindHashed(Hash{}(key), key);
  }

  /// `Find` with the key's hash precomputed by the caller — the sharded
  /// store (data/sharded.h) and the intra-query parallel runner
  /// (core/parallel.h) hash once to pick a shard and reuse the same hash
  /// for the in-shard probe. `hash` must equal `Hash{}(key)`.
  const Mapped* FindHashed(uint64_t hash, const Key& key) const {
    if (size_ == 0) {
      return nullptr;
    }
    const size_t mask = meta_.size() - 1;
    size_t index = hash & mask;
    uint8_t distance = 1;  // Stored metadata: 0 = empty, else probe dist + 1.
    while (true) {
      const uint8_t slot = meta_[index];
      if (slot == 0 || slot < distance) {
        // Robin-hood invariant: had `key` been present, it would have
        // displaced this poorer (or empty) slot.
        return nullptr;
      }
      if (slot == distance && entries_[index].first == key) {
        return &entries_[index].second;
      }
      index = (index + 1) & mask;
      ++distance;
    }
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// The combined find-else-insert entry point: returns a pointer to the
  /// mapped value of `key` and whether it was just inserted (in which case
  /// it is value-initialized and the caller must assign it). One probe
  /// sequence total — this is what Rule 1's ⊕-merge and Rule 2's
  /// union-of-supports iteration call per fact.
  std::pair<Mapped*, bool> FindOrInsert(const Key& key) {
    return FindOrInsertHashed(Hash{}(key), key);
  }

  /// `FindOrInsert` with the key's hash precomputed by the caller
  /// (`hash` must equal `Hash{}(key)`); probe sequences are identical to
  /// the hash-it-yourself path.
  std::pair<Mapped*, bool> FindOrInsertHashed(uint64_t hash,
                                              const Key& key) {
    if (NeedsGrowth()) {
      Rehash(meta_.empty() ? kMinCapacity : meta_.size() * 2);
    }
    const size_t mask = meta_.size() - 1;
    size_t index = hash & mask;
    uint8_t distance = 1;
    while (true) {
      // Overflow check first, before any branch can store `distance`:
      // stored metadata must stay <= kMaxDistance - 1 or probe counters
      // in Find could wrap past the sentinel.
      if (distance == kMaxDistance) {
        Rehash(meta_.size() * 2);
        return FindOrInsertHashed(hash, key);
      }
      const uint8_t slot = meta_[index];
      if (slot == 0) {
        meta_[index] = distance;
        entries_[index].first = key;
        entries_[index].second = Mapped();
        ++size_;
        return {&entries_[index].second, true};
      }
      if (slot == distance && entries_[index].first == key) {
        return {&entries_[index].second, false};
      }
      if (slot < distance) {
        // Rich slot found: claim it for `key` and continue inserting the
        // displaced entry further down the probe sequence.
        Entry displaced = std::move(entries_[index]);
        uint8_t displaced_distance = meta_[index];
        entries_[index].first = key;
        entries_[index].second = Mapped();
        meta_[index] = distance;
        ++size_;
        if (InsertDisplaced(std::move(displaced), displaced_distance,
                            (index + 1) & mask)) {
          // The chain overflowed and rehashed; re-locate the fresh slot.
          return {FindMutable(key), true};
        }
        return {&entries_[index].second, true};
      }
      index = (index + 1) & mask;
      ++distance;
    }
  }

  /// Sets the mapped value of `key` (inserting or overwriting).
  void Set(const Key& key, Mapped value) {
    *FindOrInsert(key).first = std::move(value);
  }

  /// Inserts `value` at `key`, or combines it with the existing mapped
  /// value via `combine(existing, value)`. Single probe sequence.
  template <typename Combine>
  void Merge(const Key& key, Mapped value, Combine combine) {
    MergeHashed(Hash{}(key), key, std::move(value), combine);
  }

  /// `Merge` with a precomputed hash (`hash` must equal `Hash{}(key)`).
  template <typename Combine>
  void MergeHashed(uint64_t hash, const Key& key, Mapped value,
                   Combine combine) {
    auto [slot, inserted] = FindOrInsertHashed(hash, key);
    if (inserted) {
      *slot = std::move(value);
    } else {
      *slot = combine(*slot, value);
    }
  }

  /// Removes `key` if present; true iff removed. Backward-shift deletion:
  /// every entry in the probe chain after `key` moves one slot closer to
  /// its home, restoring the exact table the insertion sequence without
  /// `key` would have produced — no tombstones, no load-factor creep.
  bool Erase(const Key& key) {
    if (size_ == 0) {
      return false;
    }
    return EraseHashed(Hash{}(key), key);
  }

  /// `Erase` with a precomputed hash (`hash` must equal `Hash{}(key)`).
  bool EraseHashed(uint64_t hash, const Key& key) {
    if (size_ == 0) {
      return false;
    }
    const size_t mask = meta_.size() - 1;
    size_t index = hash & mask;
    uint8_t distance = 1;
    while (true) {
      const uint8_t slot = meta_[index];
      if (slot == 0 || slot < distance) {
        return false;  // Robin-hood invariant: key would sit here.
      }
      if (slot == distance && entries_[index].first == key) {
        break;
      }
      index = (index + 1) & mask;
      ++distance;
    }
    // Shift successors back until a hole or an at-home entry (distance 1).
    size_t hole = index;
    while (true) {
      const size_t next = (hole + 1) & mask;
      if (meta_[next] <= 1) {
        break;
      }
      entries_[hole] = std::move(entries_[next]);
      meta_[hole] = meta_[next] - 1;
      hole = next;
    }
    entries_[hole] = Entry();  // Release any heap the payload owns.
    meta_[hole] = 0;
    --size_;
    return true;
  }

  /// Visits every entry as (key, mapped value), in slot order — the
  /// uniform iteration surface shared with the other relation backends.
  template <typename Fn>
  void ForEach(Fn fn) const {
    ForEachInSlotRange(0, meta_.size(), fn);
  }

  /// Visits the occupied entries whose slot index lies in [first, last) —
  /// `ForEach` restricted to a slot range, so the intra-query parallel
  /// runner (core/parallel.h) can split one table's scan across tasks.
  /// Visit order within the range is slot order, like ForEach.
  template <typename Fn>
  void ForEachInSlotRange(size_t first, size_t last, Fn fn) const {
    for (size_t i = first; i < last; ++i) {
      if (meta_[i] != 0) {
        fn(entries_[i].first, entries_[i].second);
      }
    }
  }

  /// Like ForEachInSlotRange but also hands `fn` the slot index — the
  /// parallel runner keys per-slot side arrays (precomputed hashes) off
  /// it when one scan phase writes what a later phase filters on.
  template <typename Fn>
  void ForEachSlotInRange(size_t first, size_t last, Fn fn) const {
    for (size_t i = first; i < last; ++i) {
      if (meta_[i] != 0) {
        fn(i, entries_[i].first, entries_[i].second);
      }
    }
  }

  /// Pre-sizes the table for `count` entries without exceeding the load
  /// factor (Lemma 6.6 lets Algorithm 1 bound every intermediate relation
  /// by the union of its input supports, so growth rehashes never fire).
  void Reserve(size_t count) {
    size_t needed = kMinCapacity;
    while (needed * kMaxLoadDen < count * kMaxLoadNum) {
      needed *= 2;  // Until count <= needed * (kMaxLoadDen/kMaxLoadNum).
    }
    if (needed > meta_.size()) {
      Rehash(needed);
    }
  }

  /// Removes all entries but keeps the slot array allocated, so a reused
  /// table inserts without rehashing. Entry payloads are reset to release
  /// any heap they own (provenance trees, #Sat vectors).
  void Clear() {
    if (size_ == 0) {
      return;
    }
    for (size_t i = 0; i < meta_.size(); ++i) {
      if (meta_[i] != 0) {
        entries_[i] = Entry();
      }
    }
    meta_.assign(meta_.size(), 0);
    size_ = 0;
  }

 private:
  static constexpr size_t kMinCapacity = 8;
  // Grow past kMaxLoadDen/kMaxLoadNum (7/8) occupancy: robin-hood probing
  // keeps the mean probe length short even at high load, and denser tables
  // are cheaper to iterate.
  static constexpr size_t kMaxLoadNum = 8;
  static constexpr size_t kMaxLoadDen = 7;
  static constexpr uint8_t kMaxDistance = 255;

  bool NeedsGrowth() const {
    return (size_ + 1) * kMaxLoadNum > meta_.size() * kMaxLoadDen;
  }

  Mapped* FindMutable(const Key& key) {
    return const_cast<Mapped*>(Find(key));
  }

  /// Continues a robin-hood displacement chain: re-inserts `entry` (whose
  /// stored metadata was `distance` one slot to the left) starting at
  /// `index`, swapping with any richer entry it passes. Returns true when
  /// the chain overflowed kMaxDistance and the table was rehashed (all
  /// previously returned pointers are then invalid).
  bool InsertDisplaced(Entry entry, uint8_t distance, size_t index) {
    const size_t mask = meta_.size() - 1;
    ++distance;
    while (true) {
      if (distance == kMaxDistance) {
        // Extremely unlikely with Mix64-based hashing; grow and restart.
        Entry local = std::move(entry);
        Rehash(meta_.size() * 2);
        auto [slot, inserted] = FindOrInsert(local.first);
        HIERARQ_CHECK(inserted);
        *slot = std::move(local.second);
        return true;
      }
      const uint8_t slot = meta_[index];
      if (slot == 0) {
        meta_[index] = distance;
        entries_[index] = std::move(entry);
        return false;
      }
      if (slot < distance) {
        std::swap(entries_[index], entry);
        std::swap(meta_[index], distance);
      }
      index = (index + 1) & mask;
      ++distance;
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint8_t> old_meta = std::move(meta_);
    std::vector<Entry> old_entries = std::move(entries_);
    meta_.assign(new_capacity, 0);
    entries_.assign(new_capacity, Entry());
    size_ = 0;
    for (size_t i = 0; i < old_meta.size(); ++i) {
      if (old_meta[i] != 0) {
        auto [slot, inserted] = FindOrInsert(old_entries[i].first);
        HIERARQ_CHECK(inserted);
        *slot = std::move(old_entries[i].second);
      }
    }
  }

  std::vector<uint8_t> meta_;   // 0 = empty, else probe distance + 1.
  std::vector<Entry> entries_;  // Parallel to meta_.
  size_t size_ = 0;
};

}  // namespace hierarq

#endif  // HIERARQ_UTIL_FLAT_MAP_H_
