#include "hierarq/util/status.h"

namespace hierarq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kNotHierarchical:
      return "not-hierarchical";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace hierarq
