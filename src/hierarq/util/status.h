#ifndef HIERARQ_UTIL_STATUS_H_
#define HIERARQ_UTIL_STATUS_H_

/// \file status.h
/// \brief Arrow/RocksDB-style status codes used for error handling across the
/// public API. hierarq never throws exceptions across API boundaries; fallible
/// operations return a `Status` or a `Result<T>` (see result.h).

#include <ostream>
#include <string>
#include <utility>

namespace hierarq {

/// Machine-readable category of a `Status`.
enum class StatusCode : int {
  kOk = 0,
  /// The arguments to an operation were malformed (e.g. arity mismatch).
  kInvalidArgument = 1,
  /// A lookup failed (relation, variable, fact, file...).
  kNotFound = 2,
  /// The operation is valid but not for this input class; notably raised by
  /// Algorithm 1 when the elimination procedure gets stuck, i.e. the input
  /// query is not hierarchical (Proposition 5.1 of the paper).
  kNotHierarchical = 3,
  /// Parsing a query or database text failed.
  kParseError = 4,
  /// An internal invariant was violated; indicates a bug in hierarq itself.
  kInternal = 5,
  /// Arithmetic left the representable range (e.g. saturated counters when a
  /// caller demanded exactness).
  kOutOfRange = 6,
  /// The requested feature is recognized but not implemented.
  kNotImplemented = 7,
  /// The operation was cancelled at a checkpoint because its deadline
  /// passed before it finished (see core/cancel.h).
  kDeadlineExceeded = 8,
  /// A bounded resource (e.g. the server's admission queue) was full and
  /// the operation was rejected rather than queued.
  kResourceExhausted = 9,
};

/// \brief Returns the canonical lowercase name of a status code
/// (e.g. "invalid-argument").
const char* StatusCodeName(StatusCode code);

/// \brief The result of an operation that can fail.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// human-readable message. `Status` is cheap to move and to copy in the OK
/// case (the message is empty).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status NotHierarchical(std::string msg) {
    return Status(StatusCode::kNotHierarchical, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// True iff the status carries the given code.
  bool Is(StatusCode code) const { return code_ == code; }

  /// Renders "OK" or "<code-name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace hierarq

/// Propagates an error status from an expression, Arrow-style:
/// `HIERARQ_RETURN_NOT_OK(DoThing());`
#define HIERARQ_RETURN_NOT_OK(expr)                 \
  do {                                              \
    ::hierarq::Status _hierarq_status__ = (expr);   \
    if (!_hierarq_status__.ok()) {                  \
      return _hierarq_status__;                     \
    }                                               \
  } while (false)

#endif  // HIERARQ_UTIL_STATUS_H_
