#ifndef HIERARQ_UTIL_SIMD_H_
#define HIERARQ_UTIL_SIMD_H_

/// \file simd.h
/// \brief A small SIMD portability shim for the columnar hot loops.
///
/// The columnar storage backend (data/columnar.h) spends its time in two
/// kinds of loop PR 3 deliberately left scalar: folding per-row hashes
/// column by column (`HashCombine` over a contiguous `Value` array) and
/// comparing a probe key against one candidate row's column lanes. Both
/// are data-parallel with no cross-element dependency, so they vectorize
/// cleanly — but the build must stay runnable on any x86-64 (and any
/// non-x86 host), so nothing here requires compiling the whole tree with
/// `-mavx2`.
///
/// The shim therefore provides exactly four tiers:
///
///   * `kScalar` — portable C++, always available, and the reference
///     the vector tiers must match bit-for-bit (the hash kernels are pure
///     integer math, so every tier produces identical hashes — verified
///     by tests/simd_test.cpp);
///   * `kSse2`   — 2 lanes; SSE2 is part of the x86-64 baseline, so this
///     tier compiles unconditionally on x86-64;
///   * `kAvx2`   — 4 lanes; compiled behind a function-level
///     `__attribute__((target("avx2")))` so the translation unit builds
///     without `-mavx2`, and *dispatched at runtime* via
///     `__builtin_cpu_supports`;
///   * `kAvx512` — 8 lanes; needs AVX-512F + AVX-512DQ (the DQ extension
///     carries the native 64-bit `vpmullq`, so this tier skips the 32-bit
///     multiply decomposition the narrower tiers emulate). Same
///     function-level target attributes + runtime detection.
///
/// The active tier is resolved once (overridable by the `HIERARQ_SIMD`
/// environment variable — `scalar` / `sse2` / `avx2` / `avx512` — and by
/// `SetLevelForTesting`, both clamped to what the CPU actually supports),
/// so benches can A/B the scalar and vector kernels on identical rows in
/// one binary.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hierarq::simd {

/// Vector instruction tiers, in increasing capability order.
enum class Level : unsigned char {
  kScalar = 0,  ///< Portable C++ reference loops.
  kSse2 = 1,    ///< 2x64-bit lanes (x86-64 baseline).
  kAvx2 = 2,    ///< 4x64-bit lanes (runtime-detected).
  kAvx512 = 3,  ///< 8x64-bit lanes (runtime-detected, needs F + DQ).
};

/// "scalar" / "sse2" / "avx2" / "avx512" — the spelling used by the
/// HIERARQ_SIMD environment override and the bench row tags.
const char* LevelName(Level level);

/// The most capable tier this CPU supports (independent of overrides).
Level DetectedLevel();

/// The tier the kernels currently dispatch to. Defaults to the widest of
/// kAvx512/kAvx2 the CPU has and kScalar otherwise — the 2-lane SSE2 hash
/// fold emulates 64-bit multiplies and measures slower than scalar
/// `imul`, so it is never picked implicitly — then adjusted by the
/// HIERARQ_SIMD environment variable and SetLevelForTesting (both clamped
/// to DetectedLevel()).
Level ActiveLevel();

/// Forces dispatch to `level` (clamped to DetectedLevel()); the bench
/// emitters and the kernel-equivalence tests measure scalar-vs-vector on
/// identical inputs this way. Not thread-safe against concurrent kernel
/// calls — call it from test/bench setup only.
void SetLevelForTesting(Level level);

/// The batched Mix64 hash fold: h[r] = HashCombine(h[r], column[r]) for
/// every r in [0, n) — one column's contribution to n per-row hashes
/// (util/hash.h's exact sequence, so vectorized and scalar folds agree on
/// every bit). This is the kernel behind ColumnarStore's batch row
/// hashing (Rule 1 surviving-column folds, Rule 2 whole-row folds, index
/// rebuilds).
void HashCombineRows(uint64_t* h, const int64_t* column, size_t n);

/// Probe-key compare against one candidate row's gathered column lanes:
/// columns[c][row] == key[c] for all c in [0, arity). The AVX2 tier
/// packs the row's lanes (arity >= 3) and compares branch-free; every
/// other tier — including SSE2, where two lanes cannot beat the two- or
/// three-compare early-exit loop — runs the scalar compare ColumnarStore
/// used before. `key` must have `arity` readable elements.
bool RowEqualsKey(const std::vector<std::vector<int64_t>>& columns,
                  uint32_t row, const int64_t* key, size_t arity);

/// Prefetch hint for upcoming random-access probes (hash-table meta/row
/// loads); a no-op on compilers without __builtin_prefetch.
inline void PrefetchRead(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/1);
#else
  (void)address;
#endif
}

}  // namespace hierarq::simd

#endif  // HIERARQ_UTIL_SIMD_H_
