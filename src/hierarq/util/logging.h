#ifndef HIERARQ_UTIL_LOGGING_H_
#define HIERARQ_UTIL_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logging plus CHECK macros for internal invariants.
///
/// Logging is intentionally tiny: hierarq is a library, so it stays quiet by
/// default (level = kWarning) and writes to stderr. CHECK macros abort on
/// violation regardless of build type — invariants guarded by them are cheap
/// and catching them in Release benchmarks is worth the branch.

#include <sstream>
#include <string>

namespace hierarq {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum severity that will be emitted.
void SetLogLevel(LogLevel level);
/// Returns the global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// `kFatal` messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hierarq

#define HIERARQ_LOG(level)                                             \
  ::hierarq::internal::LogMessage(::hierarq::LogLevel::k##level,       \
                                  __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Active in all builds.
#define HIERARQ_CHECK(condition)                                       \
  if (!(condition))                                                    \
  HIERARQ_LOG(Fatal) << "Check failed: " #condition " "

#define HIERARQ_CHECK_EQ(a, b) HIERARQ_CHECK((a) == (b))
#define HIERARQ_CHECK_NE(a, b) HIERARQ_CHECK((a) != (b))
#define HIERARQ_CHECK_LT(a, b) HIERARQ_CHECK((a) < (b))
#define HIERARQ_CHECK_LE(a, b) HIERARQ_CHECK((a) <= (b))
#define HIERARQ_CHECK_GT(a, b) HIERARQ_CHECK((a) > (b))
#define HIERARQ_CHECK_GE(a, b) HIERARQ_CHECK((a) >= (b))

/// Marks internal unreachable code paths.
#define HIERARQ_UNREACHABLE() \
  HIERARQ_LOG(Fatal) << "Unreachable code reached "

#endif  // HIERARQ_UTIL_LOGGING_H_
