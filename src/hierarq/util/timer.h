#ifndef HIERARQ_UTIL_TIMER_H_
#define HIERARQ_UTIL_TIMER_H_

/// \file timer.h
/// \brief Wall-clock timing helper for examples and ad-hoc measurements
/// (benchmarks proper use google-benchmark).

#include <chrono>

namespace hierarq {

/// A restartable wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hierarq

#endif  // HIERARQ_UTIL_TIMER_H_
