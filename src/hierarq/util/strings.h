#ifndef HIERARQ_UTIL_STRINGS_H_
#define HIERARQ_UTIL_STRINGS_H_

/// \file strings.h
/// \brief Small string helpers used by the query/database text parsers.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hierarq/util/result.h"

namespace hierarq {

/// Removes ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on `sep` at top nesting level only: separators inside balanced
/// parentheses are ignored. Used to split atom lists like "R(A,B), S(A,C)".
std::vector<std::string> SplitTopLevel(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a decimal (optionally signed) 64-bit integer; the whole string
/// must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating-point number; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// True iff `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_']*.
bool IsIdentifier(std::string_view s);

/// True iff `s` starts with an uppercase letter (query-variable convention).
bool LooksLikeVariable(std::string_view s);

}  // namespace hierarq

#endif  // HIERARQ_UTIL_STRINGS_H_
