#include "hierarq/util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "hierarq/util/hash.h"

#if defined(__x86_64__) || defined(_M_X64)
#define HIERARQ_SIMD_X86_64 1
#include <immintrin.h>
#else
#define HIERARQ_SIMD_X86_64 0
#endif

namespace hierarq::simd {
namespace {

// The Mix64 / HashCombine constants (util/hash.h), restated here so the
// vector lanes run the exact integer sequence the scalar helpers run.
constexpr uint64_t kMixMul1 = 0xff51afd7ed558ccdULL;
constexpr uint64_t kMixMul2 = 0xc4ceb9fe1a85ec53ULL;
constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

void HashCombineRowsScalar(uint64_t* h, const int64_t* column, size_t n) {
  for (size_t r = 0; r < n; ++r) {
    h[r] = HashCombine(h[r], static_cast<uint64_t>(column[r]));
  }
}

#if HIERARQ_SIMD_X86_64

// ----------------------------------------------------------------- SSE2 --
// SSE2 is part of the x86-64 baseline; these compile with no extra flags.

// 64x64 -> low 64 multiply per lane. SSE2/AVX2 have no 64-bit mullo, so
// decompose: lo(a)*lo(b) + ((hi(a)*lo(b) + lo(a)*hi(b)) << 32).
inline __m128i MulLo64Sse2(__m128i a, __m128i b) {
  const __m128i lolo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                    _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lolo, _mm_slli_epi64(cross, 32));
}

inline __m128i Mix64Sse2(__m128i x) {
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = MulLo64Sse2(x, _mm_set1_epi64x(static_cast<int64_t>(kMixMul1)));
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = MulLo64Sse2(x, _mm_set1_epi64x(static_cast<int64_t>(kMixMul2)));
  return _mm_xor_si128(x, _mm_srli_epi64(x, 33));
}

void HashCombineRowsSse2(uint64_t* h, const int64_t* column, size_t n) {
  const __m128i golden = _mm_set1_epi64x(static_cast<int64_t>(kGolden));
  size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const __m128i seed =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + r));
    const __m128i mixed = Mix64Sse2(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(column + r)));
    // seed ^ (Mix64(v) + golden + (seed << 6) + (seed >> 2)).
    const __m128i sum = _mm_add_epi64(
        _mm_add_epi64(mixed, golden),
        _mm_add_epi64(_mm_slli_epi64(seed, 6), _mm_srli_epi64(seed, 2)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(h + r),
                     _mm_xor_si128(seed, sum));
  }
  HashCombineRowsScalar(h + r, column + r, n - r);
}

// ----------------------------------------------------------------- AVX2 --
// Compiled behind function-level target attributes so the TU builds
// without -mavx2; only ever called when __builtin_cpu_supports("avx2").

__attribute__((target("avx2"))) inline __m256i MulLo64Avx2(__m256i a,
                                                           __m256i b) {
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64Avx2(__m256i x) {
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = MulLo64Avx2(x, _mm256_set1_epi64x(static_cast<int64_t>(kMixMul1)));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = MulLo64Avx2(x, _mm256_set1_epi64x(static_cast<int64_t>(kMixMul2)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
}

__attribute__((target("avx2"))) void HashCombineRowsAvx2(uint64_t* h,
                                                         const int64_t* column,
                                                         size_t n) {
  const __m256i golden = _mm256_set1_epi64x(static_cast<int64_t>(kGolden));
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const __m256i seed =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + r));
    const __m256i mixed = Mix64Avx2(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(column + r)));
    const __m256i sum = _mm256_add_epi64(
        _mm256_add_epi64(mixed, golden),
        _mm256_add_epi64(_mm256_slli_epi64(seed, 6),
                         _mm256_srli_epi64(seed, 2)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(h + r),
                        _mm256_xor_si256(seed, sum));
  }
  HashCombineRowsScalar(h + r, column + r, n - r);
}

/// Packs candidate row `row`'s first four column lanes next to the probe
/// key and compares all lanes at once; lanes past `arity` are padded
/// equal on both sides. Only called with 3 <= arity <= 4 (below that the
/// scalar early-exit loop wins; above it the caller finishes scalar).
__attribute__((target("avx2"))) bool RowEqualsKeyAvx2(
    const std::vector<std::vector<int64_t>>& columns, uint32_t row,
    const int64_t* key, size_t arity) {
  const __m256i lanes =
      _mm256_set_epi64x(arity > 3 ? columns[3][row] : 0, columns[2][row],
                        columns[1][row], columns[0][row]);
  const __m256i probe =
      _mm256_set_epi64x(arity > 3 ? key[3] : 0, key[2], key[1], key[0]);
  return _mm256_movemask_epi8(_mm256_cmpeq_epi64(lanes, probe)) == -1;
}

// --------------------------------------------------------------- AVX-512 --
// Needs both F (512-bit registers) and DQ (native 64-bit vpmullq — no
// 32-bit decomposition like the SSE2/AVX2 tiers). Same pattern: compiled
// behind function-level target attributes, dispatched at runtime.

__attribute__((target("avx512f,avx512dq"))) inline __m512i Mix64Avx512(
    __m512i x) {
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  x = _mm512_mullo_epi64(x, _mm512_set1_epi64(static_cast<int64_t>(kMixMul1)));
  x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
  x = _mm512_mullo_epi64(x, _mm512_set1_epi64(static_cast<int64_t>(kMixMul2)));
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 33));
}

__attribute__((target("avx512f,avx512dq"))) void HashCombineRowsAvx512(
    uint64_t* h, const int64_t* column, size_t n) {
  const __m512i golden = _mm512_set1_epi64(static_cast<int64_t>(kGolden));
  size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const __m512i seed = _mm512_loadu_si512(h + r);
    const __m512i mixed = Mix64Avx512(_mm512_loadu_si512(column + r));
    const __m512i sum = _mm512_add_epi64(
        _mm512_add_epi64(mixed, golden),
        _mm512_add_epi64(_mm512_slli_epi64(seed, 6),
                         _mm512_srli_epi64(seed, 2)));
    _mm512_storeu_si512(h + r, _mm512_xor_si512(seed, sum));
  }
  HashCombineRowsScalar(h + r, column + r, n - r);
}

/// Gathers up to 8 of the candidate row's column lanes into one register
/// and mask-compares against the probe key; lanes past `arity` are masked
/// out. Only called with arity >= 3 (below that the scalar early-exit
/// loop wins); rows wider than 8 finish in the caller's scalar tail.
__attribute__((target("avx512f,avx512dq"))) bool RowEqualsKeyAvx512(
    const std::vector<std::vector<int64_t>>& columns, uint32_t row,
    const int64_t* key, size_t arity) {
  const size_t lanes = arity < 8 ? arity : 8;
  alignas(64) int64_t row_lanes[8] = {0};
  alignas(64) int64_t key_lanes[8] = {0};
  for (size_t c = 0; c < lanes; ++c) {
    row_lanes[c] = columns[c][row];
    key_lanes[c] = key[c];
  }
  const __mmask8 live = static_cast<__mmask8>((1u << lanes) - 1u);
  const __mmask8 eq = _mm512_mask_cmpeq_epi64_mask(
      live, _mm512_load_si512(row_lanes), _mm512_load_si512(key_lanes));
  return eq == live;
}

#endif  // HIERARQ_SIMD_X86_64

Level Detect() {
#if HIERARQ_SIMD_X86_64
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return Level::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
#endif
  return Level::kSse2;
#else
  return Level::kScalar;
#endif
}

/// The tier dispatch *defaults* to. Distinct from Detect(): the SSE2 fold
/// emulates each 64-bit multiply with three 32-bit ones across only two
/// lanes, which measures *slower* than the pipelined scalar `imul` loop —
/// so SSE2 stays reachable for A/B runs (env/SetLevelForTesting) but is
/// never picked by default.
Level DefaultLevel() {
  const Level detected = Detect();
  return detected >= Level::kAvx2 ? detected : Level::kScalar;
}

Level ClampToDetected(Level level) {
  const Level detected = DetectedLevel();
  return static_cast<unsigned char>(level) <
                 static_cast<unsigned char>(detected)
             ? level
             : detected;
}

/// Resolved once on first use: hardware capability, optionally lowered by
/// the HIERARQ_SIMD environment variable.
Level InitialLevel() {
  Level level = DefaultLevel();
  if (const char* env = std::getenv("HIERARQ_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      level = Level::kScalar;
    } else if (std::strcmp(env, "sse2") == 0) {
      level = ClampToDetected(Level::kSse2);
    } else if (std::strcmp(env, "avx2") == 0) {
      level = ClampToDetected(Level::kAvx2);
    } else if (std::strcmp(env, "avx512") == 0) {
      level = ClampToDetected(Level::kAvx512);
    }
  }
  return level;
}

/// Atomic so TSAN-clean concurrent kernel calls can read it while a test
/// harness (single-threaded setup) overrides it.
std::atomic<Level>& ActiveLevelSlot() {
  static std::atomic<Level> level{InitialLevel()};
  return level;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level detected = Detect();
  return detected;
}

Level ActiveLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

void SetLevelForTesting(Level level) {
  ActiveLevelSlot().store(ClampToDetected(level), std::memory_order_relaxed);
}

void HashCombineRows(uint64_t* h, const int64_t* column, size_t n) {
#if HIERARQ_SIMD_X86_64
  switch (ActiveLevel()) {
    case Level::kAvx512:
      HashCombineRowsAvx512(h, column, n);
      return;
    case Level::kAvx2:
      HashCombineRowsAvx2(h, column, n);
      return;
    case Level::kSse2:
      HashCombineRowsSse2(h, column, n);
      return;
    case Level::kScalar:
      break;
  }
#endif
  HashCombineRowsScalar(h, column, n);
}

bool RowEqualsKey(const std::vector<std::vector<int64_t>>& columns,
                  uint32_t row, const int64_t* key, size_t arity) {
#if HIERARQ_SIMD_X86_64
  const Level level = ActiveLevel();
  if (arity >= 3 && level == Level::kAvx512) {
    if (!RowEqualsKeyAvx512(columns, row, key, arity)) {
      return false;
    }
    for (size_t c = 8; c < arity; ++c) {
      if (columns[c][row] != key[c]) {
        return false;
      }
    }
    return true;
  }
  if (arity >= 3 && level == Level::kAvx2) {
    if (!RowEqualsKeyAvx2(columns, row, key, arity)) {
      return false;
    }
    for (size_t c = 4; c < arity; ++c) {
      if (columns[c][row] != key[c]) {
        return false;
      }
    }
    return true;
  }
#endif
  for (size_t c = 0; c < arity; ++c) {
    if (columns[c][row] != key[c]) {
      return false;
    }
  }
  return true;
}

}  // namespace hierarq::simd
