#ifndef HIERARQ_INCREMENTAL_INCREMENTAL_EVALUATOR_H_
#define HIERARQ_INCREMENTAL_INCREMENTAL_EVALUATOR_H_

/// \file incremental_evaluator.h
/// \brief `IncrementalEvaluator` — the fact-update front door: attach
/// Algorithm 1 views to a `VersionedDatabase`, stream `DeltaBatch`es,
/// read maintained results.
///
/// The batch stack (Evaluator, EvalService) answers "evaluate Q over D";
/// this class answers "keep Q(D) current while D changes". A view is
/// attached once (plan build + full materialization, the same O(|D|) cost
/// as one batch evaluation) and thereafter every `ApplyDelta`:
///
///   1. applies the batch to the shared `VersionedDatabase` (one
///      generation step — the annotation cache key in `EvalService`
///      invalidates off this);
///   2. propagates the batch through every attached view
///      (incremental/incremental_view.h);
///   3. returns the fresh result of every live view.
///
/// Single-threaded by design, like `Evaluator`: one stream of updates
/// mutates one database and its views in program order. Concurrency
/// belongs a layer up (e.g. one IncrementalEvaluator behind a queue).

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/adaptive.h"
#include "hierarq/core/parallel.h"
#include "hierarq/data/storage.h"
#include "hierarq/incremental/delta.h"
#include "hierarq/incremental/incremental_view.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/query.h"
#include "hierarq/util/logging.h"
#include "hierarq/util/result.h"

namespace hierarq {

template <TwoMonoid M>
class IncrementalEvaluator {
 public:
  using K = typename M::value_type;
  using Annotator = typename IncrementalView<M>::Annotator;
  /// Stable view identifier (dense; survives other views detaching).
  using ViewHandle = size_t;

  struct Options {
    /// Storage backend of every materialized view relation.
    StorageKind storage = kDefaultStorageKind;
    /// > 1 materializes views with intra-query shard parallelism
    /// (core/parallel.h): Attach's full Algorithm 1 pass — and any future
    /// resync rematerialization — runs its big folds across a pool this
    /// evaluator owns. Delta application stays serial (per-key work).
    size_t intra_query_threads = 1;
    /// Adaptive materialization (core/adaptive.h): with the default
    /// thread count the pool is sized from the detected hardware
    /// concurrency, and parallel steps scatter into the SIMD-widened
    /// sharded-columnar flavor. Unlike the batch engine, steps are not
    /// re-decided per replay — a view's intermediates are
    /// delta-maintained in whatever backend materialization placed them,
    /// so the choice must be stable for the view's lifetime.
    bool adaptive = false;
  };

  struct Stats {
    size_t attaches = 0;       ///< Views materialized.
    size_t batches = 0;        ///< ApplyDelta calls.
    size_t ops = 0;            ///< Delta ops applied to the database.
    size_t reattach_replays = 0;  ///< Reattaches served from the log.
    size_t reattach_rematerializations = 0;  ///< Fell off the log.
  };

  /// A view released from delta propagation (`Release`), remembering the
  /// generation it was last synced to. The detached-reader protocol
  /// (versioned_database.h `log()`): hand the view back to `Reattach`
  /// and it catches up from the log suffix — or, having fallen off a
  /// truncated log, rematerializes. Recovery uses the same path: build
  /// views against a recovered snapshot, stream the replayed WAL tail.
  struct DetachedView {
    std::unique_ptr<IncrementalView<M>> view;
    uint64_t synced_generation = 0;
  };

  /// The evaluator maintains views over `*database` (non-owning; must
  /// outlive this evaluator) in `monoid`, annotating present facts with
  /// `annotator(fact, weight)`.
  IncrementalEvaluator(M monoid, VersionedDatabase* database,
                       Annotator annotator, Options options = {})
      : monoid_(std::move(monoid)),
        database_(database),
        annotator_(std::move(annotator)),
        options_(options) {
    HIERARQ_CHECK(database_ != nullptr);
    if (options_.adaptive && options_.intra_query_threads <= 1) {
      options_.intra_query_threads =
          AdaptiveController().hardware_threads();
    }
    if (options_.intra_query_threads > 1) {
      pool_ = std::make_unique<WorkerPool>(options_.intra_query_threads);
      par_.pool = pool_.get();
      par_.threads = options_.intra_query_threads;
      if (options_.adaptive) {
        par_.parallel_storage = StorageKind::kShardedColumnar;
      }
    }
  }

  IncrementalEvaluator(const IncrementalEvaluator&) = delete;
  IncrementalEvaluator& operator=(const IncrementalEvaluator&) = delete;

  const VersionedDatabase& database() const { return *database_; }
  uint64_t generation() const { return database_->generation(); }
  const Stats& stats() const { return stats_; }

  /// Builds `query`'s plan (failing with kNotHierarchical exactly as
  /// EliminationPlan::Build does), materializes its full view tree from
  /// the current database state, and returns a handle for reading the
  /// maintained result.
  Result<ViewHandle> Attach(const ConjunctiveQuery& query) {
    HIERARQ_ASSIGN_OR_RETURN(EliminationPlan plan,
                             EliminationPlan::Build(query));
    auto view = std::make_unique<IncrementalView<M>>(
        query, std::move(plan), monoid_, annotator_, options_.storage,
        par_);
    view->Materialize(*database_);
    ++stats_.attaches;
    views_.push_back(std::move(view));
    return views_.size() - 1;
  }

  /// Drops a view; its handle becomes invalid. Other handles keep their
  /// meaning. Returns false for already-detached or unknown handles.
  bool Detach(ViewHandle handle) {
    if (handle >= views_.size() || views_[handle] == nullptr) {
      return false;
    }
    views_[handle] = nullptr;
    return true;
  }

  /// Detaches a view WITHOUT destroying it: the returned DetachedView
  /// stops seeing deltas but keeps its materialized state and the
  /// generation it is synced to. Dies on invalid handles (Release of a
  /// view you do not hold is a caller bug, unlike the tolerant Detach).
  DetachedView Release(ViewHandle handle) {
    HIERARQ_CHECK_LT(handle, views_.size());
    HIERARQ_CHECK(views_[handle] != nullptr);
    DetachedView detached;
    detached.view = std::move(views_[handle]);
    detached.synced_generation = database_->generation();
    return detached;
  }

  /// Re-adopts a released (or recovered) view, catching it up to the
  /// current database state: when every generation in
  /// (synced_generation, generation()] is still in the log, the gap is
  /// replayed through the view's delta path — no rematerialization, cost
  /// proportional to the missed updates; when the log has been truncated
  /// past the sync point, the view rematerializes from scratch (the
  /// documented fallback, counted separately in stats). Returns a fresh
  /// handle; the old one stays invalid.
  ViewHandle Reattach(DetachedView detached) {
    HIERARQ_CHECK(detached.view != nullptr)
        << "Reattach of an empty DetachedView";
    const uint64_t synced = detached.synced_generation;
    const uint64_t current = database_->generation();
    HIERARQ_CHECK_LE(synced, current)
        << "DetachedView is from this database's future";
    if (synced >= database_->log_start_generation()) {
      const auto& log = database_->log();
      for (uint64_t g = synced; g < current; ++g) {
        detached.view->Apply(
            log[static_cast<size_t>(g - database_->log_start_generation())]);
      }
      ++stats_.reattach_replays;
    } else {
      detached.view->Materialize(*database_);
      ++stats_.reattach_rematerializations;
    }
    views_.push_back(std::move(detached.view));
    return views_.size() - 1;
  }

  /// Number of live (attached) views.
  size_t num_views() const {
    size_t live = 0;
    for (const auto& view : views_) {
      live += view != nullptr ? 1 : 0;
    }
    return live;
  }

  const IncrementalView<M>& view(ViewHandle handle) const {
    HIERARQ_CHECK_LT(handle, views_.size());
    HIERARQ_CHECK(views_[handle] != nullptr);
    return *views_[handle];
  }

  /// The maintained result of one view (current as of the last
  /// Attach/ApplyDelta).
  const K& ResultOf(ViewHandle handle) const { return view(handle).result(); }

  /// Applies `batch` to the database (one generation step) and propagates
  /// it through every live view. Returns the fresh (handle, result) pairs
  /// in handle order.
  std::vector<std::pair<ViewHandle, K>> ApplyDelta(const DeltaBatch& batch) {
    ++stats_.batches;
    stats_.ops += batch.size();
    incremental_internal::BatchesCounter()->Add();
    incremental_internal::OpsCounter()->Add(batch.size());
    obs::Span span("apply_delta", "incremental");
    database_->Apply(batch);
    std::vector<std::pair<ViewHandle, K>> results;
    results.reserve(views_.size());
    for (size_t handle = 0; handle < views_.size(); ++handle) {
      if (views_[handle] != nullptr) {
        results.emplace_back(handle, views_[handle]->Apply(batch));
      }
    }
    return results;
  }

 private:
  M monoid_;
  VersionedDatabase* database_;  // Non-owning.
  Annotator annotator_;
  Options options_;
  /// Materialization pool (intra_query_threads > 1 only). Declared before
  /// views_, which borrow it: views die first on destruction.
  std::unique_ptr<WorkerPool> pool_;
  IntraQueryParallel par_;
  // unique_ptr slots: handles are indices, detached views leave holes.
  std::vector<std::unique_ptr<IncrementalView<M>>> views_;
  Stats stats_;
};

}  // namespace hierarq

#endif  // HIERARQ_INCREMENTAL_INCREMENTAL_EVALUATOR_H_
