#ifndef HIERARQ_INCREMENTAL_MONOID_TRAITS_H_
#define HIERARQ_INCREMENTAL_MONOID_TRAITS_H_

/// \file monoid_traits.h
/// \brief Which 2-monoids admit ⊕-inverses — the fork in the incremental
/// Rule 1 strategy.
///
/// Rule 1 maintains group aggregates out(x') = ⊕_y R(x', y). When (K, ⊕)
/// embeds in a group, a changed contribution updates the aggregate in O(1):
///   out' = out ⊕ new ⊖ old.
/// When it does not — min/max (Tropical, resilience ⊗ is fine but its ⊕
/// saturates at ∞), the PQE ⊕ (numerically non-invertible at p = 1), bag
/// truncations — deleting the extremal contributor destroys information
/// the aggregate no longer carries, and the view falls back to re-folding
/// the affected group from the materialized source relation (O(group)
/// instead of O(1); see incremental/incremental_view.h).
///
/// A specialization declares `kPlusInvertible = true` and provides
/// `SubtractPlus(monoid, a, b)` with the contract
///   Plus(SubtractPlus(m, a, b), b) == a   whenever a was produced by a
///   ⊕-fold that included b.
/// The two shipped instances are exact ⊕-group embeddings with one caveat
/// each:
///   * CountMonoid ⊕ is saturating addition; subtraction is exact modulo
///     2^64, so maintenance is bit-identical to recomputation as long as
///     no aggregate ever saturates (|supports| and annotations in any
///     realistic stream are far below 2^64).
///   * ExpectationMonoid ⊕ is IEEE double addition; subtraction reorders
///     roundings, so maintained aggregates drift from recomputed ones at
///     unit-roundoff scale per update (the differential suite pins this at
///     1e-11 relative).

#include <cstdint>

#include "hierarq/algebra/semirings.h"
#include "hierarq/core/expectation.h"

namespace hierarq {

/// Primary template: no ⊕-inverse; incremental Rule 1 re-folds groups.
template <typename M>
struct IncrementalMonoidTraits {
  static constexpr bool kPlusInvertible = false;
};

template <>
struct IncrementalMonoidTraits<CountMonoid> {
  static constexpr bool kPlusInvertible = true;
  /// Exact inverse of + modulo 2^64 (see the saturation caveat above).
  static uint64_t SubtractPlus(const CountMonoid&, uint64_t a, uint64_t b) {
    return a - b;
  }
};

template <>
struct IncrementalMonoidTraits<ExpectationMonoid> {
  static constexpr bool kPlusInvertible = true;
  static double SubtractPlus(const ExpectationMonoid&, double a, double b) {
    return a - b;
  }
};

}  // namespace hierarq

#endif  // HIERARQ_INCREMENTAL_MONOID_TRAITS_H_
