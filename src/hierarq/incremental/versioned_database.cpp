#include "hierarq/incremental/versioned_database.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>

#include "hierarq/util/logging.h"

namespace hierarq {

uint64_t VersionedDatabase::NextUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void VersionedDatabase::TruncateLog(uint64_t keep_from) {
  if (keep_from <= log_start_generation_) {
    return;
  }
  const uint64_t drop = std::min<uint64_t>(keep_from - log_start_generation_,
                                           log_.size());
  log_.erase(log_.begin(), log_.begin() + static_cast<ptrdiff_t>(drop));
  log_start_generation_ += drop;
}

const char* DeltaKindSigil(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kInsert:
      return "+";
    case DeltaKind::kDelete:
      return "-";
    case DeltaKind::kSetAnnotation:
      return "!";
  }
  return "?";
}

VersionedDatabase::VersionedDatabase(Database base)
    : facts_(std::move(base)) {}

VersionedDatabase::VersionedDatabase(const TidDatabase& tid)
    : facts_(tid.facts()) {
  for (const auto& [fact, probability] : tid.AllFacts()) {
    weights_.emplace(fact, probability);
  }
}

VersionedDatabase::VersionedDatabase(
    Database base, std::unordered_map<Fact, double, FactHash> weights,
    uint64_t generation)
    : facts_(std::move(base)),
      weights_(std::move(weights)),
      generation_(generation),
      log_start_generation_(generation) {}

double VersionedDatabase::WeightOf(const Fact& fact) const {
  auto it = weights_.find(fact);
  if (it != weights_.end()) {
    return it->second;
  }
  return facts_.ContainsFact(fact) ? 1.0 : 0.0;
}

VersionedDatabase::ApplyStats VersionedDatabase::Apply(
    const DeltaBatch& batch) {
  // The single-writer assertion (see the header's thread-model comment):
  // two concurrent Applys on one database is a caller bug that would
  // corrupt the containers below — die at the door instead. The exchange
  // is atomic so even the detection itself is race-free under TSAN.
  HIERARQ_CHECK(!writer_.busy.exchange(true, std::memory_order_acquire))
      << "VersionedDatabase::Apply raced another Apply: the database is "
         "single-writer; serialize writers behind one lock or queue";
  ApplyStats stats;
  for (const DeltaOp& op : batch.ops) {
    switch (op.kind) {
      case DeltaKind::kInsert: {
        const bool fresh = facts_.AddFactOrDie(op.fact.relation, op.fact.tuple);
        const double old_weight = fresh ? 0.0 : WeightOf(op.fact);
        weights_[op.fact] = op.weight;
        if (fresh) {
          ++stats.inserted;
        } else if (old_weight != op.weight) {
          ++stats.reweighted;  // Normalized: insert-of-present = re-weight.
        } else {
          ++stats.noops;
        }
        break;
      }
      case DeltaKind::kDelete: {
        if (facts_.EraseFact(op.fact)) {
          weights_.erase(op.fact);
          ++stats.deleted;
        } else {
          ++stats.noops;
        }
        break;
      }
      case DeltaKind::kSetAnnotation: {
        if (!facts_.ContainsFact(op.fact)) {
          ++stats.noops;  // Absent facts have no annotation to set.
          break;
        }
        const double old_weight = WeightOf(op.fact);
        weights_[op.fact] = op.weight;
        if (old_weight != op.weight) {
          ++stats.reweighted;
        } else {
          ++stats.noops;
        }
        break;
      }
    }
  }
  ++generation_;
  log_.push_back(batch);
  writer_.busy.store(false, std::memory_order_release);
  return stats;
}

}  // namespace hierarq
