#include "hierarq/incremental/versioned_database.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>

#include "hierarq/util/logging.h"

namespace hierarq {

uint64_t VersionedDatabase::NextUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void VersionedDatabase::TruncateLog(uint64_t keep_from) {
  if (keep_from <= log_start_generation_) {
    return;
  }
  const uint64_t drop = std::min<uint64_t>(keep_from - log_start_generation_,
                                           log_.size());
  log_.erase(log_.begin(), log_.begin() + static_cast<ptrdiff_t>(drop));
  log_start_generation_ += drop;
}

const char* DeltaKindSigil(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kInsert:
      return "+";
    case DeltaKind::kDelete:
      return "-";
    case DeltaKind::kSetAnnotation:
      return "!";
  }
  return "?";
}

VersionedDatabase::VersionedDatabase(Database base)
    : facts_(std::move(base)) {}

VersionedDatabase::VersionedDatabase(const TidDatabase& tid)
    : facts_(tid.facts()) {
  for (const auto& [fact, probability] : tid.AllFacts()) {
    weights_.emplace(fact, probability);
  }
}

double VersionedDatabase::WeightOf(const Fact& fact) const {
  auto it = weights_.find(fact);
  if (it != weights_.end()) {
    return it->second;
  }
  return facts_.ContainsFact(fact) ? 1.0 : 0.0;
}

VersionedDatabase::ApplyStats VersionedDatabase::Apply(
    const DeltaBatch& batch) {
  ApplyStats stats;
  for (const DeltaOp& op : batch.ops) {
    switch (op.kind) {
      case DeltaKind::kInsert: {
        const bool fresh = facts_.AddFactOrDie(op.fact.relation, op.fact.tuple);
        const double old_weight = fresh ? 0.0 : WeightOf(op.fact);
        weights_[op.fact] = op.weight;
        if (fresh) {
          ++stats.inserted;
        } else if (old_weight != op.weight) {
          ++stats.reweighted;  // Normalized: insert-of-present = re-weight.
        } else {
          ++stats.noops;
        }
        break;
      }
      case DeltaKind::kDelete: {
        if (facts_.EraseFact(op.fact)) {
          weights_.erase(op.fact);
          ++stats.deleted;
        } else {
          ++stats.noops;
        }
        break;
      }
      case DeltaKind::kSetAnnotation: {
        if (!facts_.ContainsFact(op.fact)) {
          ++stats.noops;  // Absent facts have no annotation to set.
          break;
        }
        const double old_weight = WeightOf(op.fact);
        weights_[op.fact] = op.weight;
        if (old_weight != op.weight) {
          ++stats.reweighted;
        } else {
          ++stats.noops;
        }
        break;
      }
    }
  }
  ++generation_;
  log_.push_back(batch);
  return stats;
}

}  // namespace hierarq
