#ifndef HIERARQ_INCREMENTAL_VERSIONED_DATABASE_H_
#define HIERARQ_INCREMENTAL_VERSIONED_DATABASE_H_

/// \file versioned_database.h
/// \brief `VersionedDatabase` — a `Database` with a monotone generation
/// counter, per-fact weights, and a delta log.
///
/// Everything downstream of a database snapshot — annotation pools in the
/// service layer, materialized view trees in the incremental layer — is a
/// pure function of (facts, weights). The versioned wrapper makes that
/// dependency checkable: every applied `DeltaBatch` advances `generation()`
/// by exactly one, so a cache keyed by (database identity, generation) can
/// prove its entries fresh without comparing contents (the annotation
/// cache of `EvalService` does exactly this), and a detached reader can
/// catch up by replaying the suffix of `log()` it has not seen.
///
/// Weights are the annotator input: a view over the count monoid ignores
/// them, PQE reads them as tuple probabilities, expected multiplicity as
/// multiplicities. Facts without an explicit weight weigh 1.0, so a plain
/// set database round-trips unchanged.
///
/// `Apply` normalizes ops against the current state — inserting a present
/// fact degrades to a re-weight, deleting or re-weighting an absent fact
/// is a no-op — so views consuming the same batch see exactly the state
/// transition the database performed.
///
/// Thread model: single-writer, externally serialized. `Apply` mutates
/// the underlying containers in place, so it must not run concurrently
/// with *any* reader — including `EvalService::EvaluateMany` scans over
/// `facts()`. The generation counter proves a finished scan fresh or
/// stale; it cannot protect a scan in flight. Callers that serve reads
/// and writes concurrently put one lock (or one queue) in front of both.
/// The single-writer half of that contract is *asserted*: `Apply` CHECKs
/// that no other Apply is in flight, so a caller that lets two writers
/// race (e.g. a delta handler racing a service shutdown) dies loudly at
/// the entry point instead of corrupting containers — and the persisted
/// path inherits the same guarantee for its WAL-append + Apply pair,
/// which must execute atomically together for ack-implies-durable to
/// hold (see net/server.cpp HandleDelta).

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hierarq/data/database.h"
#include "hierarq/data/tid_database.h"
#include "hierarq/incremental/delta.h"

namespace hierarq {

class VersionedDatabase {
 public:
  /// Per-Apply effect summary (after normalization).
  struct ApplyStats {
    size_t inserted = 0;    ///< Facts that became present.
    size_t deleted = 0;     ///< Facts that became absent.
    size_t reweighted = 0;  ///< Present facts whose weight changed.
    size_t noops = 0;       ///< Ops with no effect on the state.
  };

  VersionedDatabase() = default;

  /// Wraps an existing snapshot at generation 0; all weights are 1.0.
  explicit VersionedDatabase(Database base);

  /// Wraps a TID database: facts plus their probabilities as weights.
  explicit VersionedDatabase(const TidDatabase& tid);

  /// Restores recovered state: `base` + `weights` AT `generation` — the
  /// persistence layer's re-entry point (persist/snapshot.h). The log is
  /// empty and starts at `generation`, exactly as if every prior batch
  /// had been applied and truncated away, so acks, annotation-cache keys
  /// and detached-reader catch-up all resume with correct numbering.
  VersionedDatabase(Database base,
                    std::unordered_map<Fact, double, FactHash> weights,
                    uint64_t generation);

  const Database& facts() const { return facts_; }

  /// The version: 0 at construction, +1 per applied batch.
  uint64_t generation() const { return generation_; }

  /// Process-unique identity of this versioned database (never reused,
  /// unlike addresses). Caches key on (uid, generation) so an entry can
  /// never alias a *different* database that happens to reuse freed
  /// memory at generation 0 — see EvalService's annotation cache.
  uint64_t uid() const { return uid_; }

  /// The weight of `fact`: its explicit weight if set, 1.0 for present
  /// facts without one, 0.0 for absent facts (an absent fact annotates to
  /// the monoid zero whatever the annotator does with the weight).
  double WeightOf(const Fact& fact) const;

  bool Contains(const Fact& fact) const {
    return facts_.ContainsFact(fact);
  }

  /// Applies `batch` atomically: facts and weights move to the new state,
  /// the generation advances by one (even for empty or all-no-op batches —
  /// callers observe exactly one generation step per Apply), and the batch
  /// is appended to the log. Arity mismatches with existing relations
  /// CHECK-fail: a delta stream that disagrees with the schema is a caller
  /// bug, not a data condition.
  ApplyStats Apply(const DeltaBatch& batch);

  /// The retained tail of the batch log, in order:
  /// log()[g - log_start_generation()] moved generation g to g+1. The
  /// catch-up protocol for detached readers.
  const std::vector<DeltaBatch>& log() const { return log_; }

  /// Generation of the oldest retained log entry (0 until the first
  /// TruncateLog).
  uint64_t log_start_generation() const { return log_start_generation_; }

  /// Drops log entries for generations before `keep_from` — the memory
  /// valve for endless update streams (the log otherwise grows by one
  /// batch per Apply forever). Callers with no detached readers pass
  /// generation(); a reader synced to generation g needs entries from g
  /// on. No-op when the log already starts at or after `keep_from`.
  void TruncateLog(uint64_t keep_from);

  size_t NumFacts() const { return facts_.NumFacts(); }

 private:
  /// The single-writer assertion. A plain member would delete the move
  /// operations (std::atomic is immovable), so the flag lives in a
  /// wrapper that moves/copies as a FRESH flag — correct, because a
  /// moved-from or copied database is a different writer domain.
  struct WriterFlag {
    std::atomic<bool> busy{false};
    WriterFlag() = default;
    WriterFlag(const WriterFlag&) noexcept {}
    WriterFlag& operator=(const WriterFlag&) noexcept { return *this; }
  };

  Database facts_;
  std::unordered_map<Fact, double, FactHash> weights_;
  uint64_t generation_ = 0;
  uint64_t uid_ = NextUid();
  std::vector<DeltaBatch> log_;
  uint64_t log_start_generation_ = 0;
  WriterFlag writer_;

  static uint64_t NextUid();
};

}  // namespace hierarq

#endif  // HIERARQ_INCREMENTAL_VERSIONED_DATABASE_H_
