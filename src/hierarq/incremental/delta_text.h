#ifndef HIERARQ_INCREMENTAL_DELTA_TEXT_H_
#define HIERARQ_INCREMENTAL_DELTA_TEXT_H_

/// \file delta_text.h
/// \brief The textual `DeltaBatch` grammar, shared by CLI and server.
///
/// One grammar for every write path: `hierarq_cli update` reads it from
/// stdin, the server's `kDeltaBatch` frames carry it as their payload, so
/// a stream recorded against one front door replays against the other.
/// Ops are `;`-separated on a line and the line is ATOMIC:
///
///     +R(1,2)        insert with the default weight
///     +R(x,y)@0.5    insert weighted (values follow the loader's
///                    conventions — integers map to themselves,
///                    identifiers are interned via `ParseValue`)
///     -R(1,2)        delete
///     !R(1,2)@0.9    re-weight an existing fact
///
/// `ParseDeltaLine` validates the WHOLE line — including arity
/// consistency against the database schema, the attached query, and
/// (crucially) relations first introduced by *earlier ops in the same
/// line* — before the caller applies anything. That last check is what
/// makes the atomicity promise real: `VersionedDatabase::Apply` die()s on
/// an arity mismatch, so a batch like `+New(1); +New(1,2)` that passed
/// per-op validation used to abort mid-apply with the first op already
/// committed. Here it is rejected at parse time, the batch is never
/// applied, and the generation is unchanged.

#include <string_view>

#include "hierarq/data/loader.h"
#include "hierarq/incremental/delta.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/query/query.h"
#include "hierarq/util/result.h"

namespace hierarq {

/// Parses one op (`+R(1,2)[@w]`, `-R(1,2)`, `!R(1,2)@w`). New constants
/// are interned into `dict`.
Result<DeltaOp> ParseDeltaOp(std::string_view text, Dictionary* dict);

/// Parses one line into an atomic batch (ops split on `;`; empty pieces
/// skipped). Every op's arity is validated against, in order of
/// precedence: the database schema, `query`'s atoms (optional — the
/// server has no single attached query), then the arity established by
/// the first earlier op in this line that named the relation. Errors
/// carry the 1-based op index and the offending op's text, so the caller
/// only needs to add the line number. Nothing is applied on error.
Result<DeltaBatch> ParseDeltaLine(std::string_view line, Dictionary* dict,
                                  const VersionedDatabase& db,
                                  const ConjunctiveQuery* query = nullptr);

/// Renders one op back into the grammar: `+R(a,1)@0.5`, `-R(a,1)`,
/// `!R(a,1)@0.9`. Symbolic values render through `dict`, `@weight` is
/// omitted for default-weight (1.0) inserts and always present for `!`,
/// and weights round-trip exactly (shortest-exact formatting). The WAL
/// (persist/wal.h) stores batches this way, so a log is replayable
/// through `ParseDeltaLine` AND greppable by a human.
std::string RenderDeltaOp(const DeltaOp& op, const Dictionary& dict);

/// Renders a batch as one atomic `;`-joined line —
/// `ParseDeltaLine(RenderDeltaLine(b))` reproduces `b` exactly.
std::string RenderDeltaLine(const DeltaBatch& batch, const Dictionary& dict);

}  // namespace hierarq

#endif  // HIERARQ_INCREMENTAL_DELTA_TEXT_H_
