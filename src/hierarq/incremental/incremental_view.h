#ifndef HIERARQ_INCREMENTAL_INCREMENTAL_VIEW_H_
#define HIERARQ_INCREMENTAL_INCREMENTAL_VIEW_H_

/// \file incremental_view.h
/// \brief `IncrementalView` — one query's entire Algorithm 1 state kept
/// materialized, maintained under single-fact deltas.
///
/// Batch Algorithm 1 (core/algorithm1.h) computes each intermediate
/// relation, feeds it to the next step, and drops it. The incremental view
/// keeps the whole derivation — the annotated base relation of every atom
/// *plus* the result relation of every `EliminationStep` — alive as a view
/// tree, and maintains it under a `DeltaBatch` by propagating the change
/// front up the elimination order:
///
///   * a base op touches at most one key per base relation (fact-to-key
///     projection is injective on a set database);
///   * Rule 1 (⊕-project Y out of R): a changed source key s moves exactly
///     one group aggregate, the one at s∖{Y}. With a ⊕-inverse
///     (incremental/monoid_traits.h) the aggregate updates in O(1) as
///     out ⊕ new ⊖ old, guarded by an exact per-key contributor count so
///     emptied groups leave the support; without one the view re-folds the
///     affected group from the materialized source relation, using a
///     per-step group index (projected key → dropped values present);
///   * Rule 2 (R1 ⊗ R2 over equal schemas): per-key local — a changed key
///     re-reads both operands and rewrites (or erases) that key only.
///
/// Each affected key is processed once per batch (ops are deduplicated
/// into per-relation change fronts first), so a batch of b single-fact
/// ops costs O(b · depth) monoid operations plus O(group) per re-folded
/// group — against O(|D|) for a from-scratch replay (Theorem 6.7). This
/// is the constant/sublinear single-tuple update regime Kara, Nikolic,
/// Olteanu & Zhang establish for hierarchical queries ("Trade-offs in
/// Static and Dynamic Evaluation of Hierarchical Queries").
///
/// Supports stay *exactly* equal to what a from-scratch run would build
/// (contributor counts and group indexes track presence, not values, so
/// zero-valued annotations stay in the support just as AnnotateAtom keeps
/// them), which the differential suite (tests/incremental_test.cpp)
/// checks alongside the results.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hierarq/algebra/two_monoid.h"
#include "hierarq/core/parallel.h"
#include "hierarq/data/annotated.h"
#include "hierarq/data/storage.h"
#include "hierarq/incremental/delta.h"
#include "hierarq/incremental/monoid_traits.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/trace.h"
#include "hierarq/query/elimination.h"
#include "hierarq/query/query.h"
#include "hierarq/util/logging.h"

namespace hierarq {

namespace incremental_internal {

/// Global incremental-maintenance metrics, summed across every view in the
/// process. Resolved once into statics so each Apply pays four relaxed
/// adds, not four registry lookups.
inline obs::Counter* ViewAppliesCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("incremental.view_applies");
  return counter;
}

inline obs::Counter* InverseUpdatesCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("incremental.inverse_updates");
  return counter;
}

inline obs::Counter* GroupRefoldsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("incremental.group_refolds");
  return counter;
}

inline obs::Histogram* ViewApplyNsHistogram() {
  static obs::Histogram* const histogram =
      obs::MetricsRegistry::Global().GetHistogram("incremental.view_apply_ns");
  return histogram;
}

inline obs::Counter* BatchesCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("incremental.batches");
  return counter;
}

inline obs::Counter* OpsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("incremental.ops");
  return counter;
}

}  // namespace incremental_internal

template <TwoMonoid M>
class IncrementalView {
 public:
  using K = typename M::value_type;
  /// Annotation of a present fact given its current weight
  /// (VersionedDatabase::WeightOf); absent facts are never annotated.
  using Annotator = std::function<K(const Fact&, double)>;

  struct Stats {
    size_t batches = 0;          ///< Apply calls.
    size_t ops_seen = 0;         ///< Delta ops consumed (incl. irrelevant).
    size_t keys_touched = 0;     ///< Distinct (relation, key) changes moved.
    size_t group_refolds = 0;    ///< Rule 1 fallback re-aggregations.
    size_t inverse_updates = 0;  ///< Rule 1 O(1) ⊖-updates (invertible ⊕).
    uint64_t apply_ns = 0;       ///< Total wall time spent inside Apply.
  };

  /// `par` (optional) lets Materialize run its big Rule 1/Rule 2 steps —
  /// the same ⊕-folds the batch engine shards — in parallel
  /// (core/parallel.h); the pool must outlive the view. Delta application
  /// stays serial: per-key updates have nothing to fan out.
  IncrementalView(ConjunctiveQuery query, EliminationPlan plan, M monoid,
                  Annotator annotator, StorageKind storage,
                  IntraQueryParallel par = {})
      : query_(std::move(query)),
        plan_(std::move(plan)),
        monoid_(std::move(monoid)),
        annotator_(std::move(annotator)),
        storage_(storage),
        par_(par) {
    relations_.resize(plan_.num_atoms());
    deltas_.resize(plan_.num_atoms());
    if constexpr (Traits::kPlusInvertible) {
      counts_.resize(plan_.steps().size());
    } else {
      groups_.resize(plan_.steps().size());
    }
    // Resolve each base atom's matching machinery once (see AnnotateAtom):
    // per-variable occurrence positions, and the relation → atom map
    // (unique by self-join-freeness).
    var_positions_.resize(plan_.num_base_atoms());
    for (size_t a = 0; a < plan_.num_base_atoms(); ++a) {
      const Atom& atom = query_.atoms()[a];
      var_positions_[a].reserve(atom.vars().size());
      for (VarId v : atom.vars()) {
        var_positions_[a].push_back(atom.PositionsOf(v));
      }
      atom_by_relation_.emplace(atom.relation(), a);
    }
  }

  const ConjunctiveQuery& query() const { return query_; }
  const EliminationPlan& plan() const { return plan_; }
  const M& monoid() const { return monoid_; }
  StorageKind storage() const { return storage_; }
  const Stats& stats() const { return stats_; }

  /// The maintained Algorithm 1 result as of the last Materialize/Apply.
  const K& result() const { return result_; }

  /// |supp| summed over every materialized relation (base + intermediate):
  /// the memory footprint of the view tree in facts.
  size_t TotalSupport() const {
    size_t total = 0;
    for (const AnnotatedRelation<K>& rel : relations_) {
      total += rel.size();
    }
    return total;
  }

  /// Rebuilds the whole view tree from `db` (Algorithm 1, keeping every
  /// intermediate) and the Rule 1 bookkeeping. Called by Attach; also the
  /// resync path for a reader that fell off the delta log.
  void Materialize(const VersionedDatabase& db) {
    const auto plus = [this](const K& a, const K& b) {
      return monoid_.Plus(a, b);
    };
    const auto times = [this](const K& a, const K& b) {
      return monoid_.Times(a, b);
    };
    const std::function<K(const Fact&)> annotate = [&](const Fact& fact) {
      return annotator_(fact, db.WeightOf(fact));
    };
    for (size_t a = 0; a < plan_.num_base_atoms(); ++a) {
      const Atom& atom = query_.atoms()[a];
      relations_[a].Reset(atom.vars(), storage_);
      const Relation* relation = db.facts().FindRelation(atom.relation());
      if (relation != nullptr) {
        relations_[a].Reserve(relation->size());
        AnnotateAtom<K>(atom, *relation, annotate, plus, &relations_[a]);
      }
    }
    obs::Tracer* const tracer = obs::Tracer::Current();
    obs::Span materialize_span("view.materialize", "incremental");
    for (size_t si = 0; si < plan_.steps().size(); ++si) {
      const EliminationStep& step = plan_.steps()[si];
      AnnotatedRelation<K>& result = relations_[step.result_atom];
      const VarSet& result_vars = plan_.vars_of(step.result_atom);
      const uint64_t start_ns =
          tracer != nullptr ? obs::Tracer::NowNs() : 0;
      uint64_t rows_in = 0;
      StepExecution exec;
      if (step.rule == EliminationRule::kProjectVariable) {
        const AnnotatedRelation<K>& source = relations_[step.source_atom];
        rows_in = source.size();
        // The batch engine's shared step dispatch (core/parallel.h)
        // decides parallel-vs-serial, so the two engines cannot drift in
        // coverage. A step sharded here then lives (and is delta-
        // maintained) in the sharded backend, which supports the same
        // per-key ops as the others; serial steps keep the view's
        // configured backend.
        ProjectDropStep(source, step.drop_pos, result_vars, plus, par_,
                        storage_, &result, &exec);
        RebuildRule1Bookkeeping(si, step, source);
      } else {
        rows_in = relations_[step.left_atom].size() +
                  relations_[step.right_atom].size();
        JoinUnionStep(relations_[step.left_atom],
                      relations_[step.right_atom], result_vars, times,
                      monoid_.Zero(), par_, storage_, &result, &exec);
      }
      if (tracer != nullptr) {
        obs::TraceStepArgs args;
        args.step_index = static_cast<uint32_t>(si);
        args.rule = step.rule == EliminationRule::kProjectVariable ? 1 : 2;
        args.backend = result.storage();
        args.simd = simd::ActiveLevel();
        args.parallel = exec.parallel;
        args.threads = static_cast<uint32_t>(exec.threads);
        args.rows_in = rows_in;
        args.rows_out = result.size();
        tracer->EmitStep(start_ns, obs::Tracer::NowNs(), args);
      }
    }
    RefreshResult();
  }

  /// Applies one batch the *database has already applied* (the evaluator
  /// sequences VersionedDatabase::Apply first) and returns the new result.
  /// Ops for relations or patterns the query cannot match are skipped.
  const K& Apply(const DeltaBatch& batch) {
    const uint64_t start_ns = obs::Tracer::NowNs();
    obs::Span apply_span("view.apply", "incremental");
    const size_t refolds_before = stats_.group_refolds;
    const size_t inverses_before = stats_.inverse_updates;
    ++stats_.batches;
    stats_.ops_seen += batch.size();
    for (DeltaMap& front : deltas_) {
      front.clear();
    }

    // Phase 1: move the base relations, capturing each touched key's
    // pre-batch state exactly once — the change front the steps consume.
    Tuple key;
    for (const DeltaOp& op : batch.ops) {
      auto found = atom_by_relation_.find(op.fact.relation);
      if (found == atom_by_relation_.end()) {
        continue;  // Relation not in this query.
      }
      const size_t a = found->second;
      if (!MatchFactToKey(a, op.fact, &key)) {
        continue;  // Fact cannot satisfy the atom pattern.
      }
      AnnotatedRelation<K>& rel = relations_[a];
      RecordOld(a, key, rel);
      switch (op.kind) {
        case DeltaKind::kInsert:
          rel.Set(key, annotator_(op.fact, op.weight));
          break;
        case DeltaKind::kSetAnnotation:
          // Normalized like VersionedDatabase::Apply: absent facts have
          // no annotation to set.
          if (rel.Contains(key)) {
            rel.Set(key, annotator_(op.fact, op.weight));
          }
          break;
        case DeltaKind::kDelete:
          rel.Erase(key);
          break;
      }
    }

    // Phase 2: propagate the fronts up the elimination order. A step's
    // inputs are final when it runs (plan ids are minted in step order).
    for (size_t si = 0; si < plan_.steps().size(); ++si) {
      const EliminationStep& step = plan_.steps()[si];
      if (step.rule == EliminationRule::kProjectVariable) {
        ApplyRule1(si, step);
      } else {
        ApplyRule2(step);
      }
    }

    for (const DeltaMap& front : deltas_) {
      stats_.keys_touched += front.size();
    }
    RefreshResult();

    const uint64_t elapsed_ns = obs::Tracer::NowNs() - start_ns;
    stats_.apply_ns += elapsed_ns;
    incremental_internal::ViewAppliesCounter()->Add();
    incremental_internal::InverseUpdatesCounter()->Add(
        stats_.inverse_updates - inverses_before);
    incremental_internal::GroupRefoldsCounter()->Add(stats_.group_refolds -
                                                     refolds_before);
    incremental_internal::ViewApplyNsHistogram()->Observe(elapsed_ns);
    return result_;
  }

 private:
  using Traits = IncrementalMonoidTraits<M>;

  /// Pre-batch state of one key (present + annotation, or absent).
  struct OldState {
    K value{};
    bool present = false;
  };
  using DeltaMap = std::unordered_map<Tuple, OldState, TupleHash>;

  /// Matches `fact` against base atom `a` (constants, repeated variables)
  /// and projects it onto the atom's variable-set key. Exactly
  /// AnnotateAtom's per-tuple logic, for one fact.
  bool MatchFactToKey(size_t a, const Fact& fact, Tuple* key) const {
    const Atom& atom = query_.atoms()[a];
    const Tuple& tuple = fact.tuple;
    if (tuple.size() != atom.arity()) {
      return false;
    }
    for (size_t i = 0; i < atom.terms().size(); ++i) {
      const Term& term = atom.terms()[i];
      if (term.is_constant() && term.constant() != tuple[i]) {
        return false;
      }
    }
    for (const std::vector<size_t>& positions : var_positions_[a]) {
      for (size_t i = 1; i < positions.size(); ++i) {
        if (tuple[positions[i]] != tuple[positions[0]]) {
          return false;
        }
      }
    }
    key->clear();
    for (const std::vector<size_t>& positions : var_positions_[a]) {
      key->push_back(tuple[positions.front()]);
    }
    return true;
  }

  /// Records `key`'s pre-batch state in atom `a`'s change front (first
  /// touch only — later touches in the same batch keep the original).
  /// Returns true iff this was the first touch.
  bool RecordOld(size_t a, const Tuple& key, const AnnotatedRelation<K>& rel) {
    auto [it, inserted] = deltas_[a].try_emplace(key);
    if (inserted) {
      if (const K* value = rel.Find(key)) {
        it->second.value = *value;
        it->second.present = true;
      }
    }
    return inserted;
  }

  /// Rebuilds step `si`'s Rule 1 bookkeeping (contributor counts or group
  /// index) from its materialized source relation.
  void RebuildRule1Bookkeeping(size_t si, const EliminationStep& step,
                               const AnnotatedRelation<K>& source) {
    const size_t drop = step.drop_pos;
    Tuple projected;
    if constexpr (Traits::kPlusInvertible) {
      auto& counts = counts_[si];
      counts.clear();
      source.ForEach([&](const Tuple& skey, const K&) {
        ProjectInto(skey, drop, &projected);
        ++counts[projected];
      });
    } else {
      auto& groups = groups_[si];
      groups.clear();
      source.ForEach([&](const Tuple& skey, const K&) {
        ProjectInto(skey, drop, &projected);
        groups[projected].push_back(skey[drop]);
      });
    }
  }

  static void ProjectInto(const Tuple& skey, size_t drop, Tuple* out) {
    out->clear();
    for (size_t i = 0; i < skey.size(); ++i) {
      if (i != drop) {
        out->push_back(skey[i]);
      }
    }
  }

  void ApplyRule1(size_t si, const EliminationStep& step) {
    const DeltaMap& front = deltas_[step.source_atom];
    if (front.empty()) {
      return;
    }
    const AnnotatedRelation<K>& source = relations_[step.source_atom];
    AnnotatedRelation<K>& out = relations_[step.result_atom];
    const size_t drop = step.drop_pos;
    Tuple projected;

    if constexpr (Traits::kPlusInvertible) {
      // O(1) per changed key: each front entry's contribution delta is
      // self-contained (out ⊕ new ⊖ old), so entries of the same group
      // may apply in any order.
      for (const auto& [skey, old] : front) {
        ProjectInto(skey, drop, &projected);
        const K* now = source.Find(skey);
        const bool was = old.present;
        const bool is = now != nullptr;
        RecordOld(step.result_atom, projected, out);
        auto [cit, fresh] = counts_[si].try_emplace(projected, 0);
        (void)fresh;
        if (was && !is) {
          --cit->second;
        } else if (!was && is) {
          ++cit->second;
        }
        if (cit->second == 0) {
          // Group emptied (or never existed): the key leaves the support,
          // exactly as a from-scratch aggregation would omit it.
          counts_[si].erase(cit);
          out.Erase(projected);
          continue;
        }
        const K* current = out.Find(projected);
        K acc = monoid_.Plus(current != nullptr ? *current : monoid_.Zero(),
                             is ? *now : monoid_.Zero());
        acc = Traits::SubtractPlus(monoid_, acc,
                                   was ? old.value : monoid_.Zero());
        ++stats_.inverse_updates;
        out.Set(projected, std::move(acc));
      }
      return;
    }

    // Non-invertible fallback, two passes. Refolds read the source for
    // *every* group member, and the source already reflects the whole
    // batch — so all membership bookkeeping must finish before the first
    // refold (a one-pass merge would fold members a later front entry is
    // about to remove).
    auto& groups = groups_[si];
    std::vector<Tuple> affected;  // Deduped: first-touch keys only.
    affected.reserve(front.size());
    for (const auto& [skey, old] : front) {
      ProjectInto(skey, drop, &projected);
      const K* now = source.Find(skey);
      const bool was = old.present;
      const bool is = now != nullptr;
      if (RecordOld(step.result_atom, projected, out)) {
        affected.push_back(projected);
      }
      if (was && !is) {
        auto git = groups.find(projected);
        HIERARQ_CHECK(git != groups.end());
        std::vector<Value>& members = git->second;
        for (size_t i = 0; i < members.size(); ++i) {
          if (members[i] == skey[drop]) {
            members[i] = members.back();
            members.pop_back();
            break;
          }
        }
      } else if (!was && is) {
        groups[projected].push_back(skey[drop]);
      }
    }
    Tuple refold_key;
    for (const Tuple& key : affected) {
      auto git = groups.find(key);
      if (git == groups.end() || git->second.empty()) {
        if (git != groups.end()) {
          groups.erase(git);  // Emptied this batch.
        }
        out.Erase(key);
        continue;
      }
      // Rebuild the full source key: `key` with a hole at the dropped
      // position, filled per member.
      refold_key.clear();
      for (size_t i = 0, k = 0; i <= key.size(); ++i) {
        refold_key.push_back(i == drop ? Value{0} : key[k++]);
      }
      K acc = monoid_.Zero();
      for (Value member : git->second) {
        refold_key[drop] = member;
        const K* value = source.Find(refold_key);
        HIERARQ_CHECK(value != nullptr);
        acc = monoid_.Plus(acc, *value);
      }
      ++stats_.group_refolds;
      out.Set(key, std::move(acc));
    }
  }

  void ApplyRule2(const EliminationStep& step) {
    const DeltaMap& front_left = deltas_[step.left_atom];
    const DeltaMap& front_right = deltas_[step.right_atom];
    if (front_left.empty() && front_right.empty()) {
      return;
    }
    const AnnotatedRelation<K>& left = relations_[step.left_atom];
    const AnnotatedRelation<K>& right = relations_[step.right_atom];
    AnnotatedRelation<K>& out = relations_[step.result_atom];
    const auto touch = [&](const Tuple& key) {
      RecordOld(step.result_atom, key, out);
      const K* lv = left.Find(key);
      const K* rv = right.Find(key);
      if (lv == nullptr && rv == nullptr) {
        out.Erase(key);  // Left the union of supports (Lemma 6.6).
        return;
      }
      out.Set(key, monoid_.Times(lv != nullptr ? *lv : monoid_.Zero(),
                                 rv != nullptr ? *rv : monoid_.Zero()));
    };
    for (const auto& [key, old] : front_left) {
      touch(key);
    }
    for (const auto& [key, old] : front_right) {
      if (front_left.find(key) == front_left.end()) {
        touch(key);
      }
    }
  }

  void RefreshResult() {
    const K* value = relations_[plan_.final_atom()].Find(Tuple{});
    result_ = value != nullptr ? *value : monoid_.Zero();
  }

  ConjunctiveQuery query_;
  EliminationPlan plan_;
  M monoid_;
  Annotator annotator_;
  StorageKind storage_;
  /// Parallel materialization config; disabled by default. The pool is
  /// borrowed from the owning IncrementalEvaluator.
  IntraQueryParallel par_;

  /// The view tree: one materialized relation per plan atom (base atoms
  /// in query order, then one per step result), never cleared.
  std::vector<AnnotatedRelation<K>> relations_;
  /// Per-base-atom variable occurrence positions (AnnotateAtom's hoist).
  std::vector<std::vector<std::vector<size_t>>> var_positions_;
  std::unordered_map<std::string, size_t> atom_by_relation_;
  /// Per-step Rule 1 contributor counts (invertible monoids): projected
  /// key → |group|; an entry exists iff the count is positive.
  std::vector<std::unordered_map<Tuple, size_t, TupleHash>> counts_;
  /// Per-step Rule 1 group index (fallback monoids): projected key → the
  /// dropped-position values present in the source (each exactly once —
  /// keys sharing a projection differ at the dropped position).
  std::vector<std::unordered_map<Tuple, std::vector<Value>, TupleHash>>
      groups_;
  /// Per-atom change fronts of the batch in flight (reused scratch).
  std::vector<DeltaMap> deltas_;
  K result_{};
  Stats stats_;
};

}  // namespace hierarq

#endif  // HIERARQ_INCREMENTAL_INCREMENTAL_VIEW_H_
