#ifndef HIERARQ_INCREMENTAL_DELTA_H_
#define HIERARQ_INCREMENTAL_DELTA_H_

/// \file delta.h
/// \brief Single-fact updates and update batches — the input language of
/// the incremental subsystem.
///
/// A `DeltaOp` changes one fact of a `VersionedDatabase`: it appears
/// (`kInsert`), disappears (`kDelete`), or keeps its membership but
/// changes its weight (`kSetAnnotation` — the weight is the input of the
/// view's annotator, e.g. a tuple probability for PQE or a multiplicity
/// for expected counts). A `DeltaBatch` is an ordered sequence of ops
/// applied atomically: the database generation advances once per batch,
/// and attached views (incremental/incremental_view.h) re-aggregate each
/// affected key once per batch no matter how many ops touch it.

#include <string>
#include <utility>
#include <vector>

#include "hierarq/data/database.h"
#include "hierarq/data/tuple.h"

namespace hierarq {

enum class DeltaKind : unsigned char {
  kInsert = 0,         ///< Add a fact (with a weight; 1.0 when unweighted).
  kDelete = 1,         ///< Remove a fact.
  kSetAnnotation = 2,  ///< Re-weight a present fact; absent facts: no-op.
};

/// The display spelling of a kind: "+", "-", "!" — the `hierarq_cli
/// update` command prefixes.
const char* DeltaKindSigil(DeltaKind kind);

struct DeltaOp {
  DeltaKind kind = DeltaKind::kInsert;
  Fact fact;
  /// Annotator input for kInsert / kSetAnnotation; ignored by kDelete.
  double weight = 1.0;

  std::string ToString() const {
    std::string out = DeltaKindSigil(kind) + fact.ToString();
    if (kind != DeltaKind::kDelete && weight != 1.0) {
      out += "@" + std::to_string(weight);
    }
    return out;
  }
};

/// An ordered batch of ops, applied atomically (one generation step).
struct DeltaBatch {
  std::vector<DeltaOp> ops;

  DeltaBatch& Insert(std::string relation, Tuple tuple, double weight = 1.0) {
    ops.push_back(DeltaOp{DeltaKind::kInsert,
                          Fact{std::move(relation), std::move(tuple)},
                          weight});
    return *this;
  }
  DeltaBatch& Delete(std::string relation, Tuple tuple) {
    ops.push_back(DeltaOp{DeltaKind::kDelete,
                          Fact{std::move(relation), std::move(tuple)}, 1.0});
    return *this;
  }
  DeltaBatch& SetAnnotation(std::string relation, Tuple tuple, double weight) {
    ops.push_back(DeltaOp{DeltaKind::kSetAnnotation,
                          Fact{std::move(relation), std::move(tuple)},
                          weight});
    return *this;
  }

  size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
  void clear() { ops.clear(); }
};

}  // namespace hierarq

#endif  // HIERARQ_INCREMENTAL_DELTA_H_
