#include "hierarq/incremental/delta_text.h"

#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hierarq/util/strings.h"

namespace hierarq {

Result<DeltaOp> ParseDeltaOp(std::string_view text, Dictionary* dict) {
  text = TrimView(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty update command");
  }
  DeltaOp op;
  switch (text.front()) {
    case '+':
      op.kind = DeltaKind::kInsert;
      break;
    case '-':
      op.kind = DeltaKind::kDelete;
      break;
    case '!':
      op.kind = DeltaKind::kSetAnnotation;
      break;
    default:
      return Status::InvalidArgument(
          "update command must start with '+', '-' or '!': '" +
          std::string(text) + "'");
  }
  text.remove_prefix(1);

  // Optional trailing "@weight".
  const size_t at = text.rfind('@');
  if (at != std::string_view::npos && at > text.rfind(')')) {
    if (op.kind == DeltaKind::kDelete) {
      return Status::InvalidArgument("'-' (delete) takes no '@weight': '" +
                                     std::string(text) + "'");
    }
    auto weight = ParseDouble(TrimView(text.substr(at + 1)));
    if (!weight.ok()) {
      return Status::InvalidArgument("bad '@weight' in '" +
                                     std::string(text) + "'");
    }
    op.weight = *weight;
    text = TrimView(text.substr(0, at));
  } else if (op.kind == DeltaKind::kSetAnnotation) {
    return Status::InvalidArgument(
        "'!' (re-weight) requires an '@weight': '" + std::string(text) +
        "'");
  }

  // The fact: Name(v1, v2, ...).
  const size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') {
    return Status::InvalidArgument("expected 'Relation(v1,...)' in '" +
                                   std::string(text) + "'");
  }
  op.fact.relation = Trim(text.substr(0, open));
  if (!IsIdentifier(op.fact.relation)) {
    return Status::InvalidArgument("bad relation name '" +
                                   op.fact.relation + "'");
  }
  const std::string_view body =
      text.substr(open + 1, text.size() - open - 2);
  if (!TrimView(body).empty()) {
    for (const std::string& piece : Split(body, ',')) {
      // The loader's value parser: int-vs-identifier dispatch, symbolic
      // range guard, interning — one grammar for files and streams.
      HIERARQ_ASSIGN_OR_RETURN(Value value, ParseValue(piece, dict));
      op.fact.tuple.push_back(value);
    }
  }
  return op;
}

Result<DeltaBatch> ParseDeltaLine(std::string_view line, Dictionary* dict,
                                  const VersionedDatabase& db,
                                  const ConjunctiveQuery* query) {
  DeltaBatch batch;
  // Arities fixed by earlier ops in THIS line for relations the schema
  // doesn't know yet — the first op to name a new relation defines it,
  // and a later op contradicting it fails the whole line at parse time
  // instead of aborting mid-Apply with earlier ops already committed.
  std::unordered_map<std::string, size_t> introduced;
  size_t op_index = 0;
  for (const std::string& piece : Split(line, ';')) {
    if (piece.empty()) {
      continue;
    }
    ++op_index;
    Result<DeltaOp> parsed = ParseDeltaOp(piece, dict);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    "op " + std::to_string(op_index) + " ('" + piece +
                        "'): " + parsed.status().message());
    }
    DeltaOp op = std::move(*parsed);
    size_t expected_arity = op.fact.tuple.size();
    if (const Relation* relation = db.facts().FindRelation(op.fact.relation)) {
      expected_arity = relation->arity();
    } else if (auto it = introduced.find(op.fact.relation);
               it != introduced.end()) {
      expected_arity = it->second;
    } else if (query != nullptr) {
      if (auto atom_index = query->AtomIndexOf(op.fact.relation)) {
        expected_arity = query->atoms()[*atom_index].arity();
      }
    }
    if (op.fact.tuple.size() != expected_arity) {
      return Status::InvalidArgument(
          "op " + std::to_string(op_index) + " ('" + piece +
          "'): arity mismatch: " + op.fact.relation + " takes " +
          std::to_string(expected_arity) + " value(s), got " +
          std::to_string(op.fact.tuple.size()));
    }
    introduced.try_emplace(op.fact.relation, op.fact.tuple.size());
    batch.ops.push_back(std::move(op));
  }
  if (batch.empty()) {
    return Status::InvalidArgument("no ops in update line");
  }
  return batch;
}

namespace {

/// Shortest decimal that parses back to exactly `value` — try increasing
/// precision until the round-trip is exact (17 significant digits always
/// are, for finite doubles).
std::string RenderWeight(double value) {
  char buffer[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    const Result<double> parsed = ParseDouble(buffer);
    if (parsed.ok() && *parsed == value) {
      return buffer;
    }
  }
  return buffer;
}

}  // namespace

std::string RenderDeltaOp(const DeltaOp& op, const Dictionary& dict) {
  std::string out;
  switch (op.kind) {
    case DeltaKind::kInsert:
      out += '+';
      break;
    case DeltaKind::kDelete:
      out += '-';
      break;
    case DeltaKind::kSetAnnotation:
      out += '!';
      break;
  }
  out += op.fact.relation;
  out += '(';
  for (size_t i = 0; i < op.fact.tuple.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += dict.Render(op.fact.tuple[i]);
  }
  out += ')';
  // '@weight' mirrors the parser: deletes never carry one, '!' always
  // does, inserts only when the weight is not the default.
  if (op.kind == DeltaKind::kSetAnnotation ||
      (op.kind == DeltaKind::kInsert && op.weight != 1.0)) {
    out += '@';
    out += RenderWeight(op.weight);
  }
  return out;
}

std::string RenderDeltaLine(const DeltaBatch& batch, const Dictionary& dict) {
  std::string out;
  for (size_t i = 0; i < batch.ops.size(); ++i) {
    if (i > 0) {
      out += "; ";
    }
    out += RenderDeltaOp(batch.ops[i], dict);
  }
  return out;
}

}  // namespace hierarq
