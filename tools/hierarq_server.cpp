// hierarq server daemon.
//
// Serves one database over the wire protocol of src/hierarq/net/wire.h:
// query frames for the five solvers (count, pqe, expect, resilience,
// shapley), atomic delta-batch updates in the textual grammar shared
// with `hierarq_cli update`, and a /metrics-style scrape frame. Talk to
// it with `hierarq_cli client <host:port> ...` or `HierarqClient`.
//
//   hierarq_server --db=FILE [options]
//   hierarq_server --data-dir=DIR [--db=FILE] [options]
//
//   --db=FILE          primary database (count/pqe/expect, deltas)
//   --data-dir=DIR     durable persistence (persist/persistor.h): on
//                      start, recover the database from DIR if it holds
//                      a snapshot (--db is then only the first-boot
//                      seed); while serving, WAL-append + fsync every
//                      delta BEFORE acking — an acked update survives
//                      SIGKILL — and snapshot periodically
//   --snapshot-every=N with --data-dir: write a snapshot every N acked
//                      deltas (default 256; 0 = only at boot)
//   --max-connections=N reject connections past N with a clean
//                      resource-exhausted error frame (default 0 = off)
//   --tid              load --db as a TID database (weights = probs)
//   --endo=FILE        endogenous database for resilience/shapley
//                      (--db then acts as the exogenous side)
//   --port=N           TCP port on 127.0.0.1 (default 0 = ephemeral;
//                      the chosen port is printed either way)
//   --workers=N        evaluation worker pool size (0 = all cores)
//   --submitters=N     async submitter threads (default 2)
//   --queue-limit=N    admission queue depth (default 64; full = reject)
//   --deadline-ms=N    default per-request deadline (0 = unbounded)
//   --storage=KIND     relation storage backend (flat|columnar|baseline|
//                      sharded|sharded_columnar)
//   --threads=N        intra-query parallelism for single huge replays
//   --adaptive         per-step adaptive execution
//   --slow-query-ms=N  log any query at or over N ms of evaluation wall
//                      time (query text, QueryStats, EXPLAIN ANALYZE);
//                      0 logs every query, unset disables the log
//   --log-json         structured logs as JSON lines (default key=value)
//
// On startup prints exactly one line `listening on 127.0.0.1:PORT` to
// stdout (flushed — CI scrapes it to find an ephemeral port), then
// serves until SIGINT/SIGTERM or a kShutdown frame. Lifecycle and
// slow-query events go to stderr through the structured logger
// (obs/log.h).

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "hierarq/data/loader.h"
#include "hierarq/data/storage.h"
#include "hierarq/incremental/versioned_database.h"
#include "hierarq/net/server.h"
#include "hierarq/obs/log.h"
#include "hierarq/persist/persistor.h"
#include "hierarq/util/strings.h"

namespace hierarq {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: hierarq_server --db=FILE [--tid] [--endo=FILE] [--port=N]\n"
      "                      [--data-dir=DIR] [--snapshot-every=N]\n"
      "                      [--max-connections=N]\n"
      "                      [--workers=N] [--submitters=N] "
      "[--queue-limit=N]\n"
      "                      [--deadline-ms=N] [--storage=KIND] "
      "[--threads=N]\n"
      "                      [--adaptive] [--slow-query-ms=N] "
      "[--log-json]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// SIGINT/SIGTERM land here. A handler may only do async-signal-safe
/// work, so it writes one byte into a pipe; a watcher thread turns that
/// into the server's (mutex-guarded) shutdown request.
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void HandleSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

int Run(int argc, char** argv) {
  std::string db_path;
  std::string endo_path;
  std::string data_dir;
  uint64_t snapshot_every = 256;
  bool tid = false;
  net::HierarqServer::Options options;
  StorageKind storage = kDefaultStorageKind;
  size_t threads = 1;
  bool adaptive = false;
  bool log_json = false;

  const auto parse_count = [](std::string_view text, int64_t min,
                              int64_t* out) {
    auto parsed = ParseInt64(text);
    if (!parsed.ok() || *parsed < min) {
      return false;
    }
    *out = *parsed;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    int64_t n = 0;
    if (arg.rfind("--db=", 0) == 0) {
      db_path = std::string(arg.substr(5));
    } else if (arg.rfind("--endo=", 0) == 0) {
      endo_path = std::string(arg.substr(7));
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      data_dir = std::string(arg.substr(11));
    } else if (arg.rfind("--snapshot-every=", 0) == 0) {
      if (!parse_count(arg.substr(17), 0, &n)) {
        std::fprintf(stderr, "error: bad snapshot interval in '%s'\n",
                     argv[i]);
        return Usage();
      }
      snapshot_every = static_cast<uint64_t>(n);
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      if (!parse_count(arg.substr(18), 0, &n)) {
        std::fprintf(stderr, "error: bad connection limit in '%s'\n",
                     argv[i]);
        return Usage();
      }
      options.max_connections = static_cast<size_t>(n);
    } else if (arg == "--tid") {
      tid = true;
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!parse_count(arg.substr(7), 0, &n) || n > 65535) {
        std::fprintf(stderr, "error: bad port in '%s'\n", argv[i]);
        return Usage();
      }
      options.port = static_cast<uint16_t>(n);
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!parse_count(arg.substr(10), 0, &n)) {
        std::fprintf(stderr, "error: bad worker count in '%s'\n", argv[i]);
        return Usage();
      }
      options.async.service.num_workers = static_cast<size_t>(n);
    } else if (arg.rfind("--submitters=", 0) == 0) {
      if (!parse_count(arg.substr(13), 1, &n)) {
        std::fprintf(stderr, "error: bad submitter count in '%s'\n",
                     argv[i]);
        return Usage();
      }
      options.async.submit_threads = static_cast<size_t>(n);
    } else if (arg.rfind("--queue-limit=", 0) == 0) {
      if (!parse_count(arg.substr(14), 0, &n)) {
        std::fprintf(stderr, "error: bad queue limit in '%s'\n", argv[i]);
        return Usage();
      }
      options.async.max_queue_depth = static_cast<size_t>(n);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!parse_count(arg.substr(14), 0, &n)) {
        std::fprintf(stderr, "error: bad deadline in '%s'\n", argv[i]);
        return Usage();
      }
      options.async.default_deadline_ms = static_cast<uint64_t>(n);
    } else if (arg.rfind("--storage=", 0) == 0) {
      const auto parsed_kind = ParseStorageKind(arg.substr(10));
      if (!parsed_kind.has_value()) {
        std::fprintf(stderr, "error: unknown storage backend in '%s'\n",
                     argv[i]);
        return Usage();
      }
      storage = *parsed_kind;
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_count(arg.substr(10), 1, &n)) {
        std::fprintf(stderr, "error: bad thread count in '%s'\n", argv[i]);
        return Usage();
      }
      threads = static_cast<size_t>(n);
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      if (!parse_count(arg.substr(16), 0, &n)) {
        std::fprintf(stderr, "error: bad slow-query threshold in '%s'\n",
                     argv[i]);
        return Usage();
      }
      options.slow_query_ms = n;
    } else if (arg == "--log-json") {
      log_json = true;
    } else if (arg == "--adaptive") {
      adaptive = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (db_path.empty() && data_dir.empty()) {
    std::fprintf(stderr, "error: --db=FILE (or --data-dir=DIR) is required\n");
    return Usage();
  }
  options.async.service.storage = storage;
  options.async.service.intra_query_threads = threads;
  options.async.service.adaptive = adaptive;

  // Startup-only: the global logger carries every structured event from
  // here on (lifecycle, slow queries, protocol errors), all on stderr so
  // the scraped `listening on` stdout line stays alone.
  obs::Logger::Options log_options;
  log_options.json = log_json;
  obs::Logger& log = obs::Logger::Global();
  log.Configure(log_options);

  // The dictionary outlives the server: databases load through it, delta
  // frames intern into it, shapley results render from it.
  static Dictionary dict;
  VersionedDatabase db = [&]() -> VersionedDatabase {
    if (db_path.empty()) {
      return VersionedDatabase();  // --data-dir only: recover or start empty.
    }
    if (tid) {
      auto loaded = LoadTidDatabaseFromFile(db_path, &dict);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.status().ToString().c_str());
        std::exit(1);
      }
      return VersionedDatabase(*std::move(loaded));
    }
    auto loaded = LoadDatabaseFromFile(db_path, &dict);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      std::exit(1);
    }
    return VersionedDatabase(std::move(loaded).ValueOrDie());
  }();
  Database endogenous;
  if (!endo_path.empty()) {
    auto loaded = LoadDatabaseFromFile(endo_path, &dict);
    if (!loaded.ok()) {
      return Fail(loaded.status());
    }
    endogenous = std::move(loaded).ValueOrDie();
  }

  // Durability: recover-or-seed the database from the data dir BEFORE
  // the server sees it, and hand the server the persistor so every
  // acked delta is WAL-durable. The persistor outlives the server (the
  // server holds a raw pointer and appends until Stop()).
  std::unique_ptr<persist::Persistor> persistor;
  if (!data_dir.empty()) {
    persist::Persistor::Options persist_options;
    persist_options.snapshot_every = snapshot_every;
    auto opened = persist::Persistor::Open(data_dir, persist_options);
    if (!opened.ok()) {
      return Fail(opened.status());
    }
    persistor = std::move(*opened);
    auto booted = persistor->Boot(std::move(db), &dict);
    if (!booted.ok()) {
      return Fail(booted.status());
    }
    db = std::move(*booted);
    options.persist = persistor.get();
  }

  net::HierarqServer server(options, std::move(db), std::move(endogenous),
                            &dict);
  if (const Status started = server.Start(); !started.ok()) {
    return Fail(started);
  }

  if (::pipe(g_shutdown_pipe) != 0) {
    return Fail(Status::Internal(std::string("pipe: ") +
                                 std::strerror(errno)));
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::jthread signal_watcher([&server, &log] {
    char byte = 0;
    while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    log.Info("signal", {{"action", "shutdown"}});
    server.Stop();
  });

  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  log.Info("listening",
           {{"addr", "127.0.0.1:" + std::to_string(server.port())},
            {"db", db_path},
            {"facts", std::to_string(server.database().NumFacts())},
            {"slow_query_ms", std::to_string(options.slow_query_ms)}});

  server.Wait();
  server.Stop();
  log.Info("stopped", {});
  // Unblock the watcher (self-signal through the pipe) so its jthread
  // joins; Stop above is idempotent.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
  return 0;
}

}  // namespace
}  // namespace hierarq

int main(int argc, char** argv) { return hierarq::Run(argc, argv); }
