// hierarq command-line tool.
//
// Solves any of the library's problems from a query string and database
// files in the text format of hierarq/data/loader.h.
//
// A global `--storage=flat|columnar|baseline|sharded|sharded_columnar`
// flag (anywhere on the command line) selects the relation storage
// backend every Algorithm 1 run stores its supports in; the default is
// the build's compile-time policy (flat unless configured otherwise).
//
// A global `--threads=N` flag (N >= 1) sets intra-query parallelism:
// single-query commands and update-mode view materialization fan each
// big Rule 1/Rule 2 step out over N threads (core/parallel.h), and batch
// mode additionally routes single-huge-replay groups through the same
// machinery. `--threads=1` (the default) is the bit-identical serial
// path. Batch mode's trailing [workers] argument still sizes the
// across-query worker pool independently.
//
// A global `--adaptive` flag replaces hand-picked knobs with per-step
// decisions (core/adaptive.h): cheap stats plus a calibrated cost model
// — refined by measured feedback on replays — choose each elimination
// step's backend, thread count, and serial/parallel cutoff.
// `--threads=N` then caps the fan-out (default: detected hardware
// concurrency); `--storage` still governs base-relation annotation.
// Results are identical to every fixed configuration (bit-identical for
// exact monoids).
//
// Observability (obs/): `--explain` prints an EXPLAIN ANALYZE tree after
// the run — the elimination plan annotated with each step's backend,
// thread count, rows in/out, wall time, SIMD tier, and (under
// --adaptive) the predicted-vs-chosen decision. `--trace=FILE` records
// the same per-step spans and writes Chrome trace-event JSON for
// chrome://tracing / Perfetto. `--metrics` dumps the metrics registry to
// stderr on exit.
//
//   hierarq_cli classify   <query>
//   hierarq_cli plan       <query>
//   hierarq_cli count      <query> <db>
//   hierarq_cli pqe        <query> <tid-db>
//   hierarq_cli pqe-any    <query> <tid-db>   (Shannon; any SJF-BCQ)
//   hierarq_cli expect     <query> <tid-db>
//   hierarq_cli bagset     <query> <db> <repair-db> <budget>
//   hierarq_cli repair     <query> <db> <repair-db> <budget>
//   hierarq_cli shapley    <query> <exo-db> <endo-db>
//   hierarq_cli resilience <query> <exo-db> <endo-db>
//   hierarq_cli provenance <query> <db>
//
// Batch mode reads one query per line from a file and answers them all
// through the EvalService (one annotation pass per database, replays
// fanned out across a worker pool):
//
//   hierarq_cli batch count      <queries-file> <db>            [workers]
//   hierarq_cli batch pqe        <queries-file> <tid-db>        [workers]
//   hierarq_cli batch expect     <queries-file> <tid-db>        [workers]
//   hierarq_cli batch resilience <queries-file> <exo> <endo>    [workers]
//   hierarq_cli batch provenance <queries-file> <db>            [workers]
//
// Update mode attaches an incremental view to the database and streams
// single-fact updates from stdin, printing the delta-maintained result
// after every batch (one batch per line; ops separated by ';'):
//
//   hierarq_cli update count  <query> <db>
//   hierarq_cli update pqe    <query> <tid-db>
//   hierarq_cli update expect <query> <tid-db>
//
//   > +R(1,2)            insert a fact (weight 1)
//   > +R(1,3)@0.5        insert with a weight / probability
//   > -R(1,2)            delete a fact
//   > !R(1,3)@0.9        re-weight a present fact
//   > +S(7,8); -R(1,3)   one atomic batch of two ops
//
// Malformed commands terminate the stream with an error and exit code 1.
//
// Example:
//   hierarq_cli bagset "Q() :- R(A,B), S(A,C), T(A,C,D)" d.facts dr.facts 2

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "hierarq/hierarq.h"
#include "hierarq/obs/explain.h"
#include "hierarq/obs/metrics.h"
#include "hierarq/obs/trace.h"
#include "hierarq/persist/fault_io.h"
#include "hierarq/persist/snapshot.h"
#include "hierarq/query/gyo.h"
#include "hierarq/util/strings.h"

namespace hierarq {
namespace {

/// Observability flags (--explain / --trace=FILE / --metrics), peeled off
/// the command line alongside --storage/--threads/--adaptive.
struct ObsOptions {
  bool explain = false;     ///< Print EXPLAIN ANALYZE after the run.
  std::string trace_path;   ///< Chrome trace-event JSON output, if set.
  bool metrics = false;     ///< Dump the metrics registry to stderr.
};

/// Client-mode flags (--deadline-ms / --format / --request-trace=FILE),
/// peeled globally like the others but only meaningful under `client`.
struct ClientOptions {
  uint64_t deadline_ms = 0;  ///< Per-request deadline (0 = server default).
  net::WireFormat format = net::WireFormat::kNative;
  std::string trace_path;    ///< Stitched client+server trace output.
  bool stats = false;        ///< Print the server's QueryStats line.
  uint32_t max_retries = 0;  ///< Query retries on queue-full rejections.
};

int Usage() {
  std::fprintf(stderr,
               "usage: hierarq_cli [--storage=flat|columnar|baseline|"
               "sharded|sharded_columnar] [--threads=N] [--adaptive] "
               "<command> <query> [files...]\n"
               "commands:\n"
               "  classify   <query>\n"
               "  plan       <query>\n"
               "  count      <query> <db>\n"
               "  pqe        <query> <tid-db>\n"
               "  pqe-any    <query> <tid-db>   (exhaustive; any SJF-BCQ)\n"
               "  expect     <query> <tid-db>\n"
               "  bagset     <query> <db> <repair-db> <budget>\n"
               "  repair     <query> <db> <repair-db> <budget>\n"
               "  shapley    <query> <exo-db> <endo-db>\n"
               "  resilience <query> <exo-db> <endo-db>\n"
               "  provenance <query> <db>\n"
               "batch mode (queries-file: one query per line, '#' comments):\n"
               "  batch count      <queries-file> <db>         [workers]\n"
               "  batch pqe        <queries-file> <tid-db>     [workers]\n"
               "  batch expect     <queries-file> <tid-db>     [workers]\n"
               "  batch resilience <queries-file> <exo> <endo> [workers]\n"
               "  batch provenance <queries-file> <db>         [workers]\n"
               "update mode (stdin: one delta batch per line, ops split on "
               "';'; '+R(1,2)[@w]' insert, '-R(1,2)' delete, '!R(1,2)@w' "
               "re-weight):\n"
               "  update count  <query> <db>\n"
               "  update pqe    <query> <tid-db>\n"
               "  update expect <query> <tid-db>\n"
               "durability (persist/snapshot.h data directories):\n"
               "  snapshot <db> <dir>   commit <db> as a durable snapshot\n"
               "  recover  <dir>        run crash recovery, report what "
               "survived\n"
               "client mode (against a running hierarq_server):\n"
               "  client <host:port> count|pqe|expect|resilience|shapley "
               "<query>\n"
               "  client <host:port> update            (delta lines on "
               "stdin)\n"
               "  client <host:port> metrics [text|json]\n"
               "  client <host:port> status\n"
               "  client <host:port> ping\n"
               "  client <host:port> shutdown\n"
               "options:\n"
               "  --storage=flat|columnar|baseline|sharded|"
               "sharded_columnar   relation storage backend (default: %s)\n"
               "  --threads=N   intra-query parallelism (default 1 = "
               "serial; N>1 shards big Rule 1/2 steps across N threads)\n"
               "  --adaptive    per-step adaptive execution: stats + cost "
               "model pick backend/threads/cutoff per elimination step "
               "(--threads then caps the fan-out)\n"
               "  --explain     print EXPLAIN ANALYZE after the run: the "
               "plan tree with per-step backend/threads/rows/time (and the "
               "adaptive predicted-vs-chosen decision); not available in "
               "batch mode\n"
               "  --trace=FILE  record per-step spans and write Chrome "
               "trace-event JSON to FILE (load in chrome://tracing or "
               "Perfetto)\n"
               "  --metrics     dump the metrics registry to stderr on "
               "exit\n"
               "  --deadline-ms=N      (client) per-request deadline; 0 = "
               "server default\n"
               "  --format=native|json (client) wire payload encoding "
               "(default native)\n"
               "  --request-trace=FILE (client) trace the request on both "
               "sides and write ONE stitched Chrome trace to FILE (client "
               "spans pid 1, server spans pid 2, shared trace id)\n"
               "  --stats              (client) print the server's "
               "per-query accounting (rows, steps, queue wait vs exec "
               "time, plan-cache hit) after the result\n"
               "  --retries=N          (client) retry a query up to N "
               "times with jittered exponential backoff when the server's "
               "admission queue is full (default 0 = fail fast)\n",
               StorageKindName(kDefaultStorageKind));
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string RenderFact(const Fact& fact, const Dictionary& dict) {
  std::string out = fact.relation + "(";
  for (size_t i = 0; i < fact.tuple.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += dict.Render(fact.tuple[i]);
  }
  return out + ")";
}

/// Loads a queries file: one query per line, '#' starts a comment, blank
/// lines are skipped.
Result<std::vector<ConjunctiveQuery>> LoadQueriesFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument(std::string("cannot open queries file: ") +
                                   path);
  }
  std::vector<ConjunctiveQuery> queries;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string text = Trim(line);
    if (text.empty()) {
      continue;
    }
    auto query = ParseQuery(text);
    if (!query.ok()) {
      return Status::InvalidArgument(
          std::string(path) + ":" + std::to_string(line_number) + ": " +
          query.status().ToString());
    }
    queries.push_back(std::move(query).ValueOrDie());
  }
  if (queries.empty()) {
    return Status::InvalidArgument(std::string(path) +
                                   ": no queries in file");
  }
  return queries;
}

void PrintServiceStats(const EvalService& service, size_t num_workers) {
  const ServiceStats stats = service.stats();
  std::printf(
      "-- service: %zu workers; %zu queries in %zu group(s); plans built=%zu "
      "cache hits=%zu; annotation passes=%zu (%zu shared)\n",
      num_workers, stats.requests, stats.groups, stats.plans_built,
      stats.plan_cache_hits, stats.annotation_scans,
      stats.annotations_shared);
}

/// `hierarq_cli batch <solver> <queries-file> <dbs...> [workers]`.
int RunBatch(int argc, char** argv, StorageKind storage, size_t threads,
             bool adaptive, const ObsOptions& obs) {
  if (argc < 5) {
    return Usage();
  }
  const std::string solver = argv[2];
  if (solver != "count" && solver != "pqe" && solver != "expect" &&
      solver != "resilience" && solver != "provenance") {
    return Usage();
  }
  const size_t num_dbs = solver == "resilience" ? 2 : 1;
  // argv[3] = queries file, then num_dbs database files, then optionally a
  // worker count.
  if (static_cast<size_t>(argc) < 4 + num_dbs ||
      static_cast<size_t>(argc) > 5 + num_dbs) {
    return Usage();
  }
  size_t workers = 0;  // 0 = hardware concurrency.
  if (static_cast<size_t>(argc) == 5 + num_dbs) {
    auto parsed_workers = ParseInt64(argv[4 + num_dbs]);
    if (!parsed_workers.ok() || *parsed_workers < 1) {
      return Usage();
    }
    workers = static_cast<size_t>(*parsed_workers);
  }

  auto queries = LoadQueriesFile(argv[3]);
  if (!queries.ok()) {
    return Fail(queries.status());
  }
  std::vector<const ConjunctiveQuery*> query_ptrs;
  query_ptrs.reserve(queries->size());
  for (const ConjunctiveQuery& q : *queries) {
    query_ptrs.push_back(&q);
  }

  Dictionary dict;
  EvalService::Options service_options;
  service_options.num_workers = workers;
  service_options.storage = storage;
  service_options.intra_query_threads = threads;
  service_options.adaptive = adaptive;
  EvalService service(service_options);

  // Renders one result line per query; errors are reported inline so one
  // non-hierarchical query does not sink the batch.
  const auto print_row = [&queries](size_t i, const std::string& value) {
    std::printf("%-50s %s\n", (*queries)[i].ToString().c_str(),
                value.c_str());
  };
  const auto row_error = [&print_row](size_t i, const Status& status) {
    print_row(i, "error: " + status.ToString());
  };

  if (solver == "count") {
    auto db = LoadDatabaseFromFile(argv[4], &dict);
    if (!db.ok()) {
      return Fail(db.status());
    }
    auto results = CountBatch(service, query_ptrs, *db);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        print_row(i, "Q(D) = " + std::to_string(*results[i]));
      } else {
        row_error(i, results[i].status());
      }
    }
  } else if (solver == "pqe" || solver == "expect") {
    auto db = LoadTidDatabaseFromFile(argv[4], &dict);
    if (!db.ok()) {
      return Fail(db.status());
    }
    auto results = solver == "pqe"
                       ? EvaluateProbabilityBatch(service, query_ptrs, *db)
                       : ExpectedMultiplicityBatch(service, query_ptrs, *db);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        char value[64];
        std::snprintf(value, sizeof(value),
                      solver == "pqe" ? "Pr[Q] = %.12g" : "E[Q(D)] = %.12g",
                      *results[i]);
        print_row(i, value);
      } else {
        row_error(i, results[i].status());
      }
    }
  } else if (solver == "resilience") {
    auto exo = LoadDatabaseFromFile(argv[4], &dict);
    if (!exo.ok()) {
      return Fail(exo.status());
    }
    auto endo = LoadDatabaseFromFile(argv[5], &dict);
    if (!endo.ok()) {
      return Fail(endo.status());
    }
    auto results = ComputeResilienceBatch(service, query_ptrs, *exo, *endo);
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        row_error(i, results[i].status());
      } else if (*results[i] == ResilienceMonoid::kInfinity) {
        print_row(i, "resilience = infinity");
      } else {
        print_row(i, "resilience = " + std::to_string(*results[i]));
      }
    }
  } else {  // "provenance" — the solver name was validated above.
    auto db = LoadDatabaseFromFile(argv[4], &dict);
    if (!db.ok()) {
      return Fail(db.status());
    }
    auto results = ComputeProvenanceBatch(service, query_ptrs, *db);
    for (size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) {
        print_row(i, results[i]->tree->ToString() + "  (" +
                         std::to_string(results[i]->facts.size()) +
                         " facts)");
      } else {
        row_error(i, results[i].status());
      }
    }
  }

  PrintServiceStats(service, service.num_workers());
  if (obs.metrics) {
    // The service keeps its own registry (two services in one process
    // must not blend); dump it next to the global one Run() prints.
    std::fputs(service.metrics().RenderText().c_str(), stderr);
  }
  return 0;
}

/// Streams update batches from stdin through an incremental view of
/// `query`, printing the maintained result after each batch. `render`
/// formats the monoid value. Returns 1 on the first malformed command.
template <TwoMonoid M, typename Render>
int RunUpdateLoop(const ConjunctiveQuery& query, VersionedDatabase db,
                  M monoid, typename IncrementalView<M>::Annotator annotator,
                  StorageKind storage, size_t threads, bool adaptive,
                  const ObsOptions& obs, Dictionary* dict, Render render) {
  IncrementalEvaluator<M> evaluator(std::move(monoid), &db,
                                    std::move(annotator),
                                    {storage, threads, adaptive});
  auto handle = evaluator.Attach(query);
  if (!handle.ok()) {
    return Fail(handle.status());
  }
  const IncrementalView<M>& view = evaluator.view(*handle);
  if (obs::Tracer* const tracer = obs::Tracer::Current()) {
    tracer->EmitInstant("plan", "steps",
                        static_cast<double>(view.plan().steps().size()));
    // Attach just materialized the whole view tree, so the snapshot holds
    // one step event per plan step: the materialization EXPLAIN.
    if (obs.explain) {
      std::printf("%s", obs::RenderExplainAnalyze(view.plan(),
                                                  query.variables(),
                                                  tracer->Snapshot())
                            .c_str());
    }
  }
  const auto print_state = [&] {
    std::printf("gen=%llu |D|=%zu %s\n",
                static_cast<unsigned long long>(evaluator.generation()),
                db.NumFacts(), render(evaluator.ResultOf(*handle)).c_str());
    std::fflush(stdout);
  };
  print_state();
  std::string line;
  size_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.erase(hash);
    }
    if (Trim(line).empty()) {
      continue;
    }
    // The shared grammar (incremental/delta_text.h) validates the WHOLE
    // line — including intra-line arity consistency for relations the
    // schema doesn't know yet — before anything is applied, so a
    // malformed op mid-batch leaves the database generation unchanged.
    auto batch = ParseDeltaLine(line, dict, db, &query);
    if (!batch.ok()) {
      std::fprintf(stderr, "error: stdin:%zu: %s\n", line_number,
                   batch.status().ToString().c_str());
      return 1;
    }
    const auto& stats = view.stats();
    const uint64_t apply_ns_before = stats.apply_ns;
    const size_t inverses_before = stats.inverse_updates;
    const size_t refolds_before = stats.group_refolds;
    evaluator.ApplyDelta(*batch);
    // The ack line carries the batch's maintenance cost: wall time inside
    // Apply plus how the Rule 1 work split between O(1) inverse updates
    // and group refolds.
    std::printf("gen=%llu |D|=%zu %s apply_ns=%llu inv=%zu refold=%zu\n",
                static_cast<unsigned long long>(evaluator.generation()),
                db.NumFacts(), render(evaluator.ResultOf(*handle)).c_str(),
                static_cast<unsigned long long>(stats.apply_ns -
                                                apply_ns_before),
                stats.inverse_updates - inverses_before,
                stats.group_refolds - refolds_before);
    std::fflush(stdout);
    // Auto-truncate once the batch is applied AND acknowledged (the
    // state line above is the ack): this process is the only reader, so
    // an endless stream must not retain an endless batch log. TruncateLog
    // stays public for readers that manage retention themselves.
    db.TruncateLog(db.generation());
  }
  const auto& stats = view.stats();
  std::fprintf(stderr,
               "-- update: %zu batch(es), %zu op(s), %zu key(s) touched, "
               "%zu inverse update(s), %zu group refold(s), %llu ns "
               "applying; view support=%zu\n",
               stats.batches, stats.ops_seen, stats.keys_touched,
               stats.inverse_updates, stats.group_refolds,
               static_cast<unsigned long long>(stats.apply_ns),
               view.TotalSupport());
  return 0;
}

// -- Cross-process trace stitching ------------------------------------
// Both sides of a traced RPC are rendered by obs::Tracer::WriteChromeTrace
// (the server ships its rendering verbatim in QueryResult::trace_json),
// so the stitcher can rely on that exact shape — one event object per
// line, numeric "pid"/"ts"/"dur" fields — instead of a general JSON
// parser. Anything it cannot recognize fails the stitch, never produces
// a half-rewritten file.

/// One trace envelope reduced to what the stitcher needs.
struct ParsedTrace {
  uint64_t dropped = 0;
  std::vector<std::string> events;  ///< JSON objects, one per event.
};

/// Locates the numeric value following `"key": ` in `object`; reports
/// its offset and length so callers can read or splice it.
bool FindJsonNumber(const std::string& object, const char* key,
                    size_t* value_pos, size_t* value_len) {
  const std::string needle = std::string("\"") + key + "\": ";
  const size_t at = object.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  const size_t start = at + needle.size();
  size_t end = start;
  while (end < object.size() &&
         (std::isdigit(static_cast<unsigned char>(object[end])) != 0 ||
          object[end] == '.' || object[end] == '-' || object[end] == '+' ||
          object[end] == 'e' || object[end] == 'E')) {
    ++end;
  }
  if (end == start) {
    return false;
  }
  *value_pos = start;
  *value_len = end - start;
  return true;
}

bool ReadJsonNumber(const std::string& object, const char* key,
                    double* value) {
  size_t pos = 0;
  size_t len = 0;
  if (!FindJsonNumber(object, key, &pos, &len)) {
    return false;
  }
  *value = std::strtod(object.c_str() + pos, nullptr);
  return true;
}

bool ReplaceJsonNumber(std::string* object, const char* key,
                       const std::string& replacement) {
  size_t pos = 0;
  size_t len = 0;
  if (!FindJsonNumber(*object, key, &pos, &len)) {
    return false;
  }
  object->replace(pos, len, replacement);
  return true;
}

/// Splits a WriteChromeTrace envelope into its dropped count and event
/// objects. False on anything that does not look like our own output.
bool ParseTracerEnvelope(const std::string& json, ParsedTrace* out) {
  double dropped = 0.0;
  if (!ReadJsonNumber(json, "dropped", &dropped) || dropped < 0.0) {
    return false;
  }
  out->dropped = static_cast<uint64_t>(dropped);
  const std::string open = "\"traceEvents\": [";
  const size_t array_at = json.find(open);
  const size_t close = json.rfind(']');
  if (array_at == std::string::npos || close == std::string::npos ||
      close < array_at + open.size()) {
    return false;
  }
  std::string body =
      json.substr(array_at + open.size(), close - array_at - open.size());
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find(",\n", start);
    if (end == std::string::npos) {
      end = body.size();
    }
    std::string event = Trim(body.substr(start, end - start));
    if (!event.empty()) {
      if (event.front() != '{' || event.back() != '}') {
        return false;
      }
      out->events.push_back(std::move(event));
    }
    start = end + 2;
  }
  return true;
}

/// Merges the client-side tracer with the server's trace JSON into ONE
/// Chrome trace: client events keep pid 1, server events are re-labelled
/// pid 2, and server timestamps are re-based so the server's earliest
/// event lands at the start of the client's RPC span — each process
/// stamps ns from its own steady epoch, so raw timestamps from the two
/// sides are not comparable. Dropped counts add; `trace_id` is stamped
/// into the merged envelope. False (nothing written) if either side
/// cannot be parsed.
bool WriteStitchedTrace(const obs::Tracer& client_tracer,
                        const std::string& server_json,
                        const std::string& trace_id, uint64_t rpc_start_ns,
                        std::ostream& out) {
  std::ostringstream client_json;
  client_tracer.WriteChromeTrace(client_json, /*pid=*/1, trace_id);
  ParsedTrace client;
  ParsedTrace server;
  if (!ParseTracerEnvelope(client_json.str(), &client) ||
      !ParseTracerEnvelope(server_json, &server)) {
    return false;
  }
  double server_min_ts = 0.0;
  for (size_t i = 0; i < server.events.size(); ++i) {
    double ts = 0.0;
    if (!ReadJsonNumber(server.events[i], "ts", &ts)) {
      return false;
    }
    if (i == 0 || ts < server_min_ts) {
      server_min_ts = ts;
    }
  }
  // Chrome ts are microseconds; shift the server timeline so its first
  // event coincides with the client's send (the earliest instant the
  // server work can truly have started after).
  const double delta_us =
      static_cast<double>(rpc_start_ns) / 1000.0 - server_min_ts;
  struct Ordered {
    double ts = 0.0;
    double dur = 0.0;
    std::string json;
  };
  std::vector<Ordered> merged;
  merged.reserve(client.events.size() + server.events.size());
  for (std::string& event : client.events) {
    Ordered entry;
    if (!ReadJsonNumber(event, "ts", &entry.ts)) {
      return false;
    }
    ReadJsonNumber(event, "dur", &entry.dur);  // Instants carry none.
    entry.json = std::move(event);
    merged.push_back(std::move(entry));
  }
  for (std::string& event : server.events) {
    Ordered entry;
    if (!ReadJsonNumber(event, "ts", &entry.ts)) {
      return false;
    }
    entry.ts += delta_us;
    char rebased[32];
    std::snprintf(rebased, sizeof(rebased), "%.3f", entry.ts);
    if (!ReplaceJsonNumber(&event, "ts", rebased) ||
        !ReplaceJsonNumber(&event, "pid", "2")) {
      return false;
    }
    ReadJsonNumber(event, "dur", &entry.dur);
    entry.json = std::move(event);
    merged.push_back(std::move(entry));
  }
  // The validator's ordering contract: ts ascending, parents (longer
  // durations) before children at equal starts.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Ordered& a, const Ordered& b) {
                     if (a.ts != b.ts) {
                       return a.ts < b.ts;
                     }
                     return a.dur > b.dur;
                   });
  out << "{\"displayTimeUnit\": \"ns\", \"dropped\": "
      << (client.dropped + server.dropped);
  if (!trace_id.empty()) {
    out << ", \"trace_id\": \"" << trace_id << "\"";
  }
  out << ", \"traceEvents\": [";
  for (size_t i = 0; i < merged.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << merged[i].json;
  }
  out << "\n]}\n";
  return out.good();
}

/// `hierarq_cli client <host:port> <command> ...` — the same solvers,
/// answered by a running hierarq_server. Result lines are rendered
/// exactly as direct mode renders them, so `diff` between the two modes
/// is the bit-identical-results check.
int RunClient(int argc, char** argv, const ClientOptions& options) {
  if (argc < 4) {
    return Usage();
  }
  auto host_port = net::ParseHostPort(argv[2]);
  if (!host_port.ok()) {
    return Fail(host_port.status());
  }
  net::HierarqClient::Options client_opts;
  client_opts.format = options.format;
  client_opts.max_retries = options.max_retries;
  net::HierarqClient client(client_opts);
  if (const Status connected =
          client.Connect(host_port->first, host_port->second);
      !connected.ok()) {
    return Fail(connected);
  }
  const std::string command = argv[3];

  if (command == "ping") {
    if (const Status status = client.Ping(); !status.ok()) {
      return Fail(status);
    }
    std::printf("pong\n");
    return 0;
  }
  if (command == "shutdown") {
    if (const Status status = client.Shutdown(); !status.ok()) {
      return Fail(status);
    }
    std::printf("server shutting down\n");
    return 0;
  }
  if (command == "status") {
    auto status = client.ServerStatus();
    if (!status.ok()) {
      return Fail(status.status());
    }
    std::printf("uptime_s           %.1f\n",
                static_cast<double>(status->uptime_ns) / 1e9);
    std::printf("queue_depth        %llu\n",
                static_cast<unsigned long long>(status->queue_depth));
    std::printf("oldest_job_age_ms  %.3f\n",
                static_cast<double>(status->oldest_job_age_ns) / 1e6);
    std::printf("active_connections %llu\n",
                static_cast<unsigned long long>(status->active_connections));
    std::printf("requests_total     %llu\n",
                static_cast<unsigned long long>(status->requests_total));
    std::printf("errors_total       %llu\n",
                static_cast<unsigned long long>(status->errors_total));
    for (const std::string& error : status->recent_errors) {
      std::printf("recent_error       %s\n", error.c_str());
    }
    return 0;
  }
  if (command == "metrics") {
    net::WireFormat rendering = net::WireFormat::kNative;
    if (argc == 5 && std::string_view(argv[4]) == "json") {
      rendering = net::WireFormat::kJson;
    } else if (argc == 5 && std::string_view(argv[4]) != "text") {
      return Usage();
    } else if (argc > 5) {
      return Usage();
    }
    auto rendered = client.Metrics(rendering);
    if (!rendered.ok()) {
      return Fail(rendered.status());
    }
    std::fputs(rendered->c_str(), stdout);
    return 0;
  }
  if (command == "update") {
    // Same stream grammar as direct update mode; each line is one atomic
    // batch, a parse error server-side applies NOTHING and ends the
    // stream nonzero with the server's op-precise message.
    std::string line;
    size_t line_number = 0;
    while (std::getline(std::cin, line)) {
      ++line_number;
      const size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line.erase(hash);
      }
      if (Trim(line).empty()) {
        continue;
      }
      auto ack = client.ApplyDelta(line);
      if (!ack.ok()) {
        std::fprintf(stderr, "error: stdin:%zu: %s\n", line_number,
                     ack.status().ToString().c_str());
        return 1;
      }
      std::printf("gen=%llu |D|=%llu\n",
                  static_cast<unsigned long long>(ack->generation),
                  static_cast<unsigned long long>(ack->num_facts));
      std::fflush(stdout);
    }
    return 0;
  }

  auto solver = net::ParseSolverKind(command);
  if (!solver.ok() || argc != 5) {
    return Usage();
  }
  // A traced request is traced on BOTH sides: the client records its own
  // spans (pid 1) around the RPC, the server tags its work with the
  // minted trace id, and the two are stitched into one file below.
  const bool capture_trace = !options.trace_path.empty();
  std::string trace_id;
  std::optional<obs::Tracer> client_tracer;
  if (capture_trace) {
    trace_id = net::HierarqClient::MintTraceId();
    client_tracer.emplace();
    client_tracer->Install();
  }
  const uint64_t rpc_start_ns = obs::Tracer::NowNs();
  auto result = client.Query(*solver, argv[4], options.deadline_ms,
                             capture_trace, options.stats, trace_id);
  const uint64_t rpc_end_ns = obs::Tracer::NowNs();
  if (client_tracer.has_value()) {
    client_tracer->EmitSpan("client_rpc", "net", rpc_start_ns, rpc_end_ns);
    client_tracer->Uninstall();
  }
  if (!result.ok()) {
    return Fail(result.status());
  }
  switch (*solver) {
    case net::SolverKind::kCount:
      std::printf("Q(D) = %llu  (Algorithm 1, counting semiring)\n",
                  static_cast<unsigned long long>(result->count));
      break;
    case net::SolverKind::kPqe:
      std::printf("Pr[Q] = %.12g\n", result->number);
      break;
    case net::SolverKind::kExpect:
      std::printf("E[Q(D)] = %.12g\n", result->number);
      break;
    case net::SolverKind::kResilience:
      if (result->count == ResilienceMonoid::kInfinity) {
        std::printf("resilience = infinity (query cannot be falsified)\n");
      } else {
        std::printf("resilience = %llu\n",
                    static_cast<unsigned long long>(result->count));
      }
      break;
    case net::SolverKind::kShapley:
      for (const net::ShapleyEntry& entry : result->shapley) {
        std::printf("%-30s %s  (%.6f)\n", entry.fact.c_str(),
                    entry.fraction.c_str(), entry.value);
      }
      break;
  }
  if (options.stats) {
    if (client.last_response_had_stats()) {
      std::printf("stats: %s\n", result->stats.Render().c_str());
      std::printf(
          "timing: queue_wait=%.3fms exec=%.3fms\n",
          static_cast<double>(result->stats.queue_wait_ns) / 1e6,
          static_cast<double>(result->stats.exec_ns) / 1e6);
    } else {
      std::fprintf(stderr,
                   "warning: server answered without a stats section "
                   "(pre-accounting server?)\n");
    }
  }
  if (capture_trace) {
    std::ofstream out(options.trace_path, std::ios::binary);
    if (!out ||
        !WriteStitchedTrace(*client_tracer, result->trace_json, trace_id,
                            rpc_start_ns, out)) {
      std::fprintf(stderr, "error: cannot write stitched trace to %s\n",
                   options.trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace %s written to %s\n", trace_id.c_str(),
                 options.trace_path.c_str());
  }
  return 0;
}

/// `hierarq_cli update <solver> <query> <db>`.
int RunUpdate(int argc, char** argv, StorageKind storage, size_t threads,
              bool adaptive, const ObsOptions& obs) {
  if (argc != 5) {
    return Usage();
  }
  const std::string solver = argv[2];
  if (solver != "count" && solver != "pqe" && solver != "expect") {
    std::fprintf(stderr,
                 "error: unknown update solver '%s' (expected count, pqe "
                 "or expect)\n",
                 solver.c_str());
    return 2;
  }
  auto parsed = ParseQuery(argv[3]);
  if (!parsed.ok()) {
    return Fail(parsed.status());
  }
  const ConjunctiveQuery query = std::move(parsed).ValueOrDie();
  Dictionary dict;

  if (solver == "count") {
    auto db = LoadDatabaseFromFile(argv[4], &dict);
    if (!db.ok()) {
      return Fail(db.status());
    }
    return RunUpdateLoop(
        query, VersionedDatabase(*std::move(db)), CountMonoid{},
        [](const Fact&, double) -> uint64_t { return 1; }, storage,
        threads, adaptive, obs, &dict, [](uint64_t value) {
          return "Q(D) = " + std::to_string(value);
        });
  }
  auto db = LoadTidDatabaseFromFile(argv[4], &dict);
  if (!db.ok()) {
    return Fail(db.status());
  }
  // Weights are probabilities for both TID solvers; clamp to [0,1]
  // exactly as TidDatabase::AddFact clamps file-loaded facts, so a fact
  // is annotated the same whether it arrived by file or by stream.
  const auto weight_annotator = [](const Fact&, double weight) {
    return std::clamp(weight, 0.0, 1.0);
  };
  const auto render_double = [&solver](double value) {
    char out[64];
    std::snprintf(out, sizeof(out),
                  solver == "pqe" ? "Pr[Q] = %.12g" : "E[Q(D)] = %.12g",
                  value);
    return std::string(out);
  };
  if (solver == "pqe") {
    return RunUpdateLoop(query, VersionedDatabase(*db), ProbMonoid{},
                         weight_annotator, storage, threads, adaptive, obs,
                         &dict, render_double);
  }
  return RunUpdateLoop(query, VersionedDatabase(*db), ExpectationMonoid{},
                       weight_annotator, storage, threads, adaptive, obs,
                       &dict, render_double);
}

/// `snapshot <db> <dir>`: load a database file and commit it as a
/// durable snapshot (generation 0) — the offline way to seed a server
/// data directory before the first `--data-dir` boot.
int RunSnapshot(int argc, char** argv) {
  if (argc != 4) {
    return Usage();
  }
  Dictionary dict;
  auto db = LoadDatabaseFromFile(argv[2], &dict);
  if (!db.ok()) {
    return Fail(db.status());
  }
  const VersionedDatabase versioned(std::move(db).ValueOrDie());
  persist::RealFileIo io;
  auto stats = persist::WriteSnapshot(io, argv[3], versioned, dict);
  if (!stats.ok()) {
    return Fail(stats.status());
  }
  std::printf("snapshot generation %llu: %zu relation(s), %zu fact(s), "
              "%llu bytes -> %s\n",
              static_cast<unsigned long long>(stats->generation),
              stats->relations, stats->facts,
              static_cast<unsigned long long>(stats->bytes), argv[3]);
  return 0;
}

/// `recover <dir>`: run crash recovery (newest valid snapshot + WAL
/// replay) and report what survived — the offline check that a data
/// directory is loadable and how far it reaches.
int RunRecover(int argc, char** argv) {
  if (argc != 3) {
    return Usage();
  }
  Dictionary dict;
  persist::RealFileIo io;
  persist::RecoverResult detail;
  auto db = persist::RecoverDatabase(io, argv[2], &dict, &detail);
  if (!db.ok()) {
    return Fail(db.status());
  }
  std::printf("recovered generation %llu (snapshot %llu + %zu wal "
              "record(s))\n",
              static_cast<unsigned long long>(detail.recovered_generation),
              static_cast<unsigned long long>(detail.snapshot_generation),
              detail.wal_records);
  std::printf("%zu relation(s), %zu fact(s)\n",
              db->facts().relations().size(), db->NumFacts());
  if (detail.used_fallback_manifest) {
    std::printf("note: MANIFEST was invalid; recovered via MANIFEST.1\n");
  }
  if (detail.wal_truncated_bytes > 0) {
    std::printf("note: %zu torn/corrupt wal byte(s) truncated\n",
                detail.wal_truncated_bytes);
  }
  return 0;
}

int Run(int argc, char** argv) {
  // Peel the global --storage / --threads flags off wherever they
  // appear, leaving the positional arguments in place. Unknown backends,
  // bad thread counts, and unknown --flags are errors, not silent
  // fallbacks to defaults.
  StorageKind storage = kDefaultStorageKind;
  size_t threads = 1;
  bool adaptive = false;
  ObsOptions obs;
  ClientOptions client_options;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--storage=", 0) == 0) {
      const auto parsed_kind = ParseStorageKind(arg.substr(10));
      if (!parsed_kind.has_value()) {
        std::fprintf(stderr,
                     "error: unknown storage backend in '%s' (expected "
                     "flat, columnar, baseline, sharded or "
                     "sharded_columnar)\n",
                     argv[i]);
        return Usage();
      }
      storage = *parsed_kind;
      continue;
    }
    if (arg.rfind("--threads=", 0) == 0) {
      const auto parsed_threads = ParseInt64(arg.substr(10));
      if (!parsed_threads.ok() || *parsed_threads < 1) {
        std::fprintf(stderr,
                     "error: bad thread count in '%s' (expected an "
                     "integer >= 1)\n",
                     argv[i]);
        return Usage();
      }
      threads = static_cast<size_t>(*parsed_threads);
      continue;
    }
    if (arg == "--adaptive") {
      adaptive = true;
      continue;
    }
    if (arg == "--explain") {
      obs.explain = true;
      continue;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      obs.trace_path = std::string(arg.substr(8));
      if (obs.trace_path.empty()) {
        std::fprintf(stderr, "error: --trace needs a file path\n");
        return Usage();
      }
      continue;
    }
    if (arg == "--metrics") {
      obs.metrics = true;
      continue;
    }
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      const auto parsed_deadline = ParseInt64(arg.substr(14));
      if (!parsed_deadline.ok() || *parsed_deadline < 0) {
        std::fprintf(stderr,
                     "error: bad deadline in '%s' (expected an integer "
                     ">= 0)\n",
                     argv[i]);
        return Usage();
      }
      client_options.deadline_ms = static_cast<uint64_t>(*parsed_deadline);
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      const std::string_view format = arg.substr(9);
      if (format == "native") {
        client_options.format = net::WireFormat::kNative;
      } else if (format == "json") {
        client_options.format = net::WireFormat::kJson;
      } else {
        std::fprintf(stderr,
                     "error: unknown wire format in '%s' (expected native "
                     "or json)\n",
                     argv[i]);
        return Usage();
      }
      continue;
    }
    if (arg.rfind("--request-trace=", 0) == 0) {
      client_options.trace_path = std::string(arg.substr(16));
      if (client_options.trace_path.empty()) {
        std::fprintf(stderr, "error: --request-trace needs a file path\n");
        return Usage();
      }
      continue;
    }
    if (arg == "--stats") {
      client_options.stats = true;
      continue;
    }
    if (arg.rfind("--retries=", 0) == 0) {
      auto parsed_retries = ParseInt64(arg.substr(10));
      if (!parsed_retries.ok() || *parsed_retries < 0) {
        std::fprintf(stderr, "error: bad retry count in '%s'\n", argv[i]);
        return Usage();
      }
      client_options.max_retries = static_cast<uint32_t>(*parsed_retries);
      continue;
    }
    if (i > 0 && arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return Usage();
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 3) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "batch" && obs.explain) {
    std::fprintf(stderr,
                 "error: --explain needs a single query (batch mode "
                 "answers many); use --trace=FILE instead\n");
    return 2;
  }

  // The flight recorder spans every mode; the trace file and the metrics
  // dump are written in the shared epilogue below.
  std::optional<obs::Tracer> tracer;
  if (obs.explain || !obs.trace_path.empty()) {
    tracer.emplace();
    tracer->Install();
  }
  const auto finish = [&](int rc) {
    if (tracer.has_value() && !obs.trace_path.empty()) {
      tracer->WriteChromeTraceFile(obs.trace_path);
    }
    if (obs.metrics) {
      std::fputs(obs::MetricsRegistry::Global().RenderText().c_str(),
                 stderr);
    }
    if (tracer.has_value()) {
      tracer->Uninstall();
    }
    return rc;
  };

  if (command == "batch") {
    return finish(RunBatch(argc, argv, storage, threads, adaptive, obs));
  }
  if (command == "update") {
    return finish(RunUpdate(argc, argv, storage, threads, adaptive, obs));
  }
  if (command == "client") {
    return finish(RunClient(argc, argv, client_options));
  }
  if (command == "snapshot") {
    return finish(RunSnapshot(argc, argv));
  }
  if (command == "recover") {
    return finish(RunRecover(argc, argv));
  }
  auto parsed = ParseQuery(argv[2]);
  if (!parsed.ok()) {
    return finish(Fail(parsed.status()));
  }
  const ConjunctiveQuery query = std::move(parsed).ValueOrDie();
  Dictionary dict;
  // The command dispatch runs inside a lambda so the explain/trace
  // epilogue below sees its return code.
  const int rc = [&]() -> int {
  // One evaluator for the whole invocation: any command that runs
  // Algorithm 1 more than once (shapley above all) shares its cached plan
  // and relation buffers. --threads applies to every Algorithm 1 run it
  // performs.
  Evaluator::Options evaluator_options;
  evaluator_options.storage = storage;
  evaluator_options.intra_query_threads = threads;
  evaluator_options.adaptive = adaptive;
  Evaluator evaluator(evaluator_options);

  auto load = [&dict](const char* path) {
    return LoadDatabaseFromFile(path, &dict);
  };
  auto load_tid = [&dict](const char* path) {
    return LoadTidDatabaseFromFile(path, &dict);
  };

  if (command == "classify") {
    std::printf("query: %s\n", query.ToString().c_str());
    std::printf("class: %s\n", QueryClassName(Classify(query)));
    if (auto violation = FindHierarchyViolation(query)) {
      std::printf("violation: %s\n", violation->ToString(query).c_str());
    } else {
      auto forest = BuildHierarchyForest(query);
      std::printf("hierarchy tree: %s\n",
                  forest->ToString(query.variables()).c_str());
    }
    return 0;
  }

  if (command == "plan") {
    auto plan = EliminationPlan::Build(query);
    if (!plan.ok()) {
      return Fail(plan.status());
    }
    std::printf("%s\n", plan->ToString(query.variables()).c_str());
    return 0;
  }

  if (command == "count") {
    if (argc != 4) {
      return Usage();
    }
    auto db = load(argv[3]);
    if (!db.ok()) {
      return Fail(db.status());
    }
    std::printf("Q(D) = %llu  (join engine)\n",
                static_cast<unsigned long long>(BagSetCount(query, *db)));
    // The shared evaluator (not BagSetCountHierarchical) so the fast
    // path honors --threads/--adaptive and shows up under --explain;
    // both are Algorithm 1 in the counting semiring with annotation 1.
    auto fast = evaluator.Evaluate<CountMonoid>(
        query, CountMonoid{}, *db, [](const Fact&) -> uint64_t { return 1; });
    if (fast.ok()) {
      std::printf("Q(D) = %llu  (Algorithm 1, counting semiring)\n",
                  static_cast<unsigned long long>(*fast));
    }
    return 0;
  }

  if (command == "pqe" || command == "pqe-any" || command == "expect") {
    if (argc != 4) {
      return Usage();
    }
    auto db = load_tid(argv[3]);
    if (!db.ok()) {
      return Fail(db.status());
    }
    auto value = command == "pqe" ? EvaluateProbability(evaluator, query, *db)
                : command == "pqe-any"
                    ? EvaluateProbabilityExhaustive(query, *db)
                    : ExpectedMultiplicity(evaluator, query, *db);
    if (!value.ok()) {
      return Fail(value.status());
    }
    std::printf(command == "expect" ? "E[Q(D)] = %.12g\n"
                                    : "Pr[Q] = %.12g\n",
                *value);
    return 0;
  }

  if (command == "bagset" || command == "repair") {
    if (argc != 6) {
      return Usage();
    }
    auto d = load(argv[3]);
    if (!d.ok()) {
      return Fail(d.status());
    }
    auto dr = load(argv[4]);
    if (!dr.ok()) {
      return Fail(dr.status());
    }
    auto budget = ParseInt64(argv[5]);
    if (!budget.ok() || *budget < 0) {
      return Usage();
    }
    auto result = MaximizeBagSet(query, *d, *dr,
                                 static_cast<size_t>(*budget),
                                 /*costs=*/nullptr, storage);
    if (!result.ok()) {
      return Fail(result.status());
    }
    std::printf("optimum at budget %lld: %llu\n",
                static_cast<long long>(*budget),
                static_cast<unsigned long long>(result->max_multiplicity));
    std::printf("profile:");
    for (uint64_t v : result->profile) {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
    if (command == "repair") {
      auto witness = ExtractOptimalRepair(query, *d, *dr,
                                          static_cast<size_t>(*budget));
      if (!witness.ok()) {
        return Fail(witness.status());
      }
      std::printf("optimal repair:\n");
      for (const Fact& f : *witness) {
        std::printf("  + %s\n", RenderFact(f, dict).c_str());
      }
    }
    return 0;
  }

  if (command == "shapley") {
    if (argc != 5) {
      return Usage();
    }
    auto exo = load(argv[3]);
    if (!exo.ok()) {
      return Fail(exo.status());
    }
    auto endo = load(argv[4]);
    if (!endo.ok()) {
      return Fail(endo.status());
    }
    auto values = AllShapleyValues(evaluator, query, *exo, *endo);
    if (!values.ok()) {
      return Fail(values.status());
    }
    for (const auto& [fact, value] : *values) {
      std::printf("%-30s %s  (%.6f)\n", RenderFact(fact, dict).c_str(),
                  value.ToString().c_str(), value.ToDouble());
    }
    return 0;
  }

  if (command == "resilience") {
    if (argc != 5) {
      return Usage();
    }
    auto exo = load(argv[3]);
    if (!exo.ok()) {
      return Fail(exo.status());
    }
    auto endo = load(argv[4]);
    if (!endo.ok()) {
      return Fail(endo.status());
    }
    auto value = ComputeResilience(evaluator, query, *exo, *endo);
    if (!value.ok()) {
      return Fail(value.status());
    }
    if (*value == ResilienceMonoid::kInfinity) {
      std::printf("resilience = infinity (query cannot be falsified)\n");
    } else {
      std::printf("resilience = %llu\n",
                  static_cast<unsigned long long>(*value));
    }
    return 0;
  }

  if (command == "provenance") {
    if (argc != 4) {
      return Usage();
    }
    auto db = load(argv[3]);
    if (!db.ok()) {
      return Fail(db.status());
    }
    auto prov = ComputeProvenance(evaluator, query, *db);
    if (!prov.ok()) {
      return Fail(prov.status());
    }
    std::printf("%s\n", prov->tree->ToString().c_str());
    for (size_t i = 0; i < prov->facts.size(); ++i) {
      std::printf("  f%zu = %s\n", i,
                  RenderFact(prov->facts[i], dict).c_str());
    }
    return 0;
  }

  return Usage();
  }();

  // Explain/trace epilogue for the commands that replay `query`'s
  // elimination plan. The "plan" instant tells tools/check_trace.py how
  // many steps a complete trace must cover.
  const bool evaluates_plan = command == "count" || command == "pqe" ||
                              command == "expect" || command == "shapley" ||
                              command == "resilience" ||
                              command == "provenance";
  if (rc == 0 && tracer.has_value() && evaluates_plan) {
    auto plan = EliminationPlan::Build(query);
    if (plan.ok()) {
      tracer->EmitInstant("plan", "steps",
                          static_cast<double>(plan->steps().size()));
      if (obs.explain) {
        std::printf("%s", obs::RenderExplainAnalyze(*plan,
                                                    query.variables(),
                                                    tracer->Snapshot())
                              .c_str());
      }
    } else if (obs.explain) {
      std::fprintf(stderr, "note: --explain skipped: %s\n",
                   plan.status().ToString().c_str());
    }
  } else if (obs.explain && !evaluates_plan) {
    std::fprintf(stderr,
                 "note: --explain has no effect for '%s' (nothing ran "
                 "Algorithm 1 over the query's plan)\n",
                 command.c_str());
  }
  return finish(rc);
}

}  // namespace
}  // namespace hierarq

int main(int argc, char** argv) {
  return hierarq::Run(argc, argv);
}
