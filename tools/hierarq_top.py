#!/usr/bin/env python3
"""Live fleet view for a running hierarq_server — `top` for queries.

Polls the server's kStatusRequest and kMetricsRequest frames (JSON
format) over a plain TCP socket — no dependencies beyond the standard
library — and renders a one-screen summary every interval: uptime, queue
depth and oldest-job age, active connections, request/error RATES
(deltas between polls, not lifetime totals), per-frame-type traffic, and
the latency quantiles the server estimates from its log-2 histograms
(server.query_ns p50/p90/p99).

Usage:
  tools/hierarq_top.py HOST:PORT [--interval=SECONDS] [--once]

`--once` prints a single snapshot (no rates) and exits — CI smoke-tests
the endpoint with it.

Wire framing (must match src/hierarq/net/wire.h):
  u32 payload_len | u8 type | u8 format | u16 flags | u64 request_id  (LE)
All 64-bit integers in the JSON payloads arrive as decimal strings
(doubles round past 2^53); this tool is one of the consumers that
contract exists for.
"""

import argparse
import json
import socket
import struct
import sys
import time

HEADER = struct.Struct("<IBBHQ")

# FrameType values from net/wire.h.
METRICS_REQUEST = 6
METRICS_RESPONSE = 7
STATUS_REQUEST = 11
STATUS_RESPONSE = 12
ERROR_FRAME = 3

FORMAT_JSON = 1

MAX_PAYLOAD = 16 << 20


class WireError(RuntimeError):
    pass


def read_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise WireError("server closed the connection")
        buf += chunk
    return buf


def round_trip(sock, frame_type, request_id):
    sock.sendall(HEADER.pack(0, frame_type, FORMAT_JSON, 0, request_id))
    while True:
        length, rtype, _fmt, _flags, rid = HEADER.unpack(
            read_exact(sock, HEADER.size))
        if length > MAX_PAYLOAD:
            raise WireError("oversized frame (%d bytes)" % length)
        payload = read_exact(sock, length)
        if rid != request_id:
            continue  # Stale response from an earlier (timed-out) poll.
        if rtype == ERROR_FRAME:
            raise WireError("server error: %s" % payload.decode(
                "utf-8", "replace"))
        return rtype, payload


def u64(value):
    """Decodes the wire's decimal-string 64-bit integers."""
    return int(value)


def fetch(sock, request_id):
    rtype, payload = round_trip(sock, STATUS_REQUEST, request_id)
    if rtype != STATUS_RESPONSE:
        raise WireError("unexpected frame type %d for status" % rtype)
    status = json.loads(payload)
    rtype, payload = round_trip(sock, METRICS_REQUEST, request_id + 1)
    if rtype != METRICS_RESPONSE:
        raise WireError("unexpected frame type %d for metrics" % rtype)
    metrics = json.loads(payload)
    return status, metrics


def frame_counters(metrics):
    counters = metrics.get("server", {}).get("counters", {})
    return {
        name.split(".")[-1]: u64(value)
        for name, value in sorted(counters.items())
        if name.startswith("server.frames.") or name == "server.error_frames"
    }


def fmt_ns(ns):
    ns = float(ns)
    if ns >= 1e9:
        return "%.2fs" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.1fus" % (ns / 1e3)
    return "%.0fns" % ns


def render(status, metrics, prev, elapsed):
    lines = []
    uptime = "%.1fs" % (u64(status["uptime_ns"]) / 1e9)
    lines.append(
        "uptime %-10s queue %-4d oldest-job %-10s connections %d" % (
            uptime, u64(status["queue_depth"]),
            fmt_ns(u64(status["oldest_job_age_ns"])),
            u64(status["active_connections"])))

    requests = u64(status["requests_total"])
    errors = u64(status["errors_total"])
    if prev is not None and elapsed > 0:
        prev_status, _prev_metrics = prev
        qps = (requests - u64(prev_status["requests_total"])) / elapsed
        eps = (errors - u64(prev_status["errors_total"])) / elapsed
        lines.append("requests %-12d (%.1f/s)    errors %-8d (%.1f/s)" % (
            requests, qps, errors, eps))
    else:
        lines.append("requests %-12d errors %d" % (requests, errors))

    frames = frame_counters(metrics)
    if frames:
        lines.append("frames   " + "  ".join(
            "%s=%d" % (kind, count) for kind, count in sorted(
                frames.items())))

    histograms = metrics.get("server", {}).get("histograms", {})
    query_ns = histograms.get("server.query_ns")
    if query_ns and u64(query_ns["count"]) > 0:
        lines.append(
            "latency  count=%d p50=%s p90=%s p99=%s" % (
                u64(query_ns["count"]), fmt_ns(query_ns["p50"]),
                fmt_ns(query_ns["p90"]), fmt_ns(query_ns["p99"])))

    for error in status.get("recent_errors", [])[-3:]:
        lines.append("recent_error %s" % error)
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="live fleet view for a hierarq_server")
    parser.add_argument("address", help="HOST:PORT of the server")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between polls (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit (CI smoke test)")
    args = parser.parse_args()

    host, _, port = args.address.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port)
    except ValueError:
        parser.error("bad address %r (want HOST:PORT)" % args.address)

    try:
        sock = socket.create_connection((host, port), timeout=10)
    except OSError as error:
        print("error: cannot connect to %s:%d: %s" % (host, port, error),
              file=sys.stderr)
        return 1

    prev = None
    prev_time = None
    request_id = 1
    with sock:
        while True:
            try:
                status, metrics = fetch(sock, request_id)
            except (WireError, ValueError, KeyError) as error:
                print("error: %s" % error, file=sys.stderr)
                return 1
            request_id += 2
            now = time.monotonic()
            elapsed = (now - prev_time) if prev_time is not None else 0.0
            if not args.once:
                print("\x1b[2J\x1b[H", end="")  # Clear between frames.
            print(render(status, metrics, prev, elapsed), flush=True)
            if args.once:
                return 0
            prev = (status, metrics)
            prev_time = now
            time.sleep(args.interval)


if __name__ == "__main__":
    sys.exit(main())
