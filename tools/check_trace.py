#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file emitted by `hierarq_cli --trace`.

Checks, in order:

  1. The file parses and has the expected envelope: a top-level object
     with a "traceEvents" array of event objects.
  2. Timestamps are monotone: the exporter writes events sorted by start
     time, so "ts" must be non-decreasing across the array.
  3. Spans nest: within one (pid, tid) track, complete events ("ph": "X")
     must form a proper hierarchy — a span that starts inside another
     must also end inside it. Overlapping-but-not-nested spans render as
     garbage in chrome://tracing and indicate a clock or emit bug.
  4. Step coverage: if the trace carries a "plan" instant (args.steps =
     N, emitted once per traced evaluation), then every step event's
     args.step must lie in [0, N), every index in [0, N) must appear, and
     all indices must appear the same number of times — one evaluation
     traces each elimination step exactly once, k evaluations k times.

     Exception: the tracer's per-thread rings are flight recorders — when
     a ring wraps, the OLDEST events are overwritten (counted in the
     envelope's top-level "dropped" field). A wrapped trace can no longer
     promise complete coverage, so when dropped > 0 the missing-index and
     evenness checks degrade to warnings and only out-of-range step
     indices stay fatal.

Usage: check_trace.py FILE [FILE...]; exits 0 iff every file passes.
"""

import json
import sys

# Slack for float round-off: "ts"/"dur" are microseconds with three
# decimals (nanosecond resolution), so one picosecond of slack is enough.
EPS = 1e-6


def fail(path, message):
    print(f"check_trace: {path}: {message}", file=sys.stderr)
    return False


def warn(path, message):
    print(f"check_trace: {path}: warning: {message}", file=sys.stderr)


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"cannot parse: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(path, "no top-level 'traceEvents' array")
    dropped = doc.get("dropped", 0)
    if not isinstance(dropped, int) or dropped < 0:
        return fail(path, f"'dropped' must be a non-negative int: {dropped!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail(path, "'traceEvents' is not an array")
    if not events:
        return fail(path, "empty trace (no events recorded)")

    # 2. Monotone timestamps.
    last_ts = None
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ts" not in ev or "ph" not in ev:
            return fail(path, f"event {i} is not a trace event: {ev!r}")
        ts = ev["ts"]
        if last_ts is not None and ts < last_ts - EPS:
            return fail(
                path,
                f"event {i} breaks ts monotonicity: {ts} after {last_ts}",
            )
        last_ts = ts

    # 3. Matched span nesting per track.
    stacks = {}  # (pid, tid) -> stack of (start, end, name)
    for i, ev in enumerate(events):
        if ev["ph"] != "X":
            continue
        if "dur" not in ev:
            return fail(path, f"complete event {i} has no 'dur'")
        start = ev["ts"]
        end = start + ev["dur"]
        stack = stacks.setdefault((ev.get("pid"), ev.get("tid")), [])
        while stack and stack[-1][1] <= start + EPS:
            stack.pop()
        if stack and end > stack[-1][1] + EPS:
            return fail(
                path,
                f"event {i} ({ev.get('name')!r} [{start}, {end}]) overlaps "
                f"enclosing span {stack[-1][2]!r} "
                f"[{stack[-1][0]}, {stack[-1][1]}] without nesting",
            )
        stack.append((start, end, ev.get("name")))

    # 4. Step coverage against the "plan" instant, when present.
    plan_steps = None
    for ev in events:
        if ev["ph"] == "i" and ev.get("name") == "plan":
            args = ev.get("args", {})
            if "steps" not in args:
                return fail(path, "'plan' instant has no args.steps")
            plan_steps = int(args["steps"])
    step_counts = {}
    for i, ev in enumerate(events):
        args = ev.get("args", {})
        if ev["ph"] != "X" or "step" not in args:
            continue
        step = int(args["step"])
        if plan_steps is not None and not 0 <= step < plan_steps:
            return fail(
                path,
                f"event {i} has step index {step} outside the plan's "
                f"[0, {plan_steps})",
            )
        step_counts[step] = step_counts.get(step, 0) + 1
    if plan_steps is not None:
        missing = [s for s in range(plan_steps) if s not in step_counts]
        if missing:
            message = (
                f"plan has {plan_steps} steps but none traced for "
                f"indices {missing}"
            )
            if dropped > 0:
                # The rings wrapped: the overwritten window may have held
                # exactly these step events, so incompleteness is expected
                # and only a warning.
                warn(path, f"{message} ({dropped} events dropped)")
            else:
                return fail(path, message)
        if len(set(step_counts.values())) > 1:
            message = (
                f"uneven step coverage (each evaluation must trace every "
                f"step once): {dict(sorted(step_counts.items()))}"
            )
            if dropped > 0:
                warn(path, f"{message} ({dropped} events dropped)")
            else:
                return fail(path, message)

    n_spans = sum(1 for ev in events if ev["ph"] == "X")
    plan_note = f", plan steps={plan_steps}" if plan_steps is not None else ""
    drop_note = f", dropped={dropped}" if dropped else ""
    print(
        f"check_trace: {path}: OK ({len(events)} events, {n_spans} spans, "
        f"{len(step_counts)} step indices{plan_note}{drop_note})"
    )
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    ok = all([check_file(path) for path in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
