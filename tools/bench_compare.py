#!/usr/bin/env python3
"""Diffs two BENCH_*.json snapshots row by row.

The bench binaries emit flat JSON documents ({"benchmark", "storage",
"rows": [{"name", <metric>: <number>, ...}, ...]}) precisely so successive
PRs can be compared machine-to-machine. This tool joins two snapshots on
row name and prints, per shared metric, old -> new and the speedup factor
(new/old, or old/new for latency-like metrics named *_ms / *_seconds,
so that > 1.00x always reads as "better").

Malformed input degrades gracefully: rows without a "name" (or that are
not objects) are skipped with a warning, and a metric whose baseline or
candidate value is 0 renders "n/a" with a warning instead of dividing by
zero — a partially-written snapshot must not take the whole CI regression
job down.

Usage:
  tools/bench_compare.py OLD.json NEW.json [--metric METRIC] [--threshold X]
  tools/bench_compare.py --self-test

Exit status: 0 normally; 2 with --threshold when any compared metric
regressed by more than the given factor (e.g. --threshold 1.10 fails on a
>10% regression) — usable as a CI tripwire.
"""

import argparse
import json
import sys
import tempfile

# Metrics where *smaller* is better; their ratio column is inverted so
# "speedup > 1" uniformly means improvement.
LATENCY_SUFFIXES = ("_ms", "_millis", "_seconds", "_ns")


def warn(message):
    print(f"bench_compare: warning: {message}", file=sys.stderr)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "rows" not in doc or not isinstance(doc["rows"], list):
        sys.exit(f"error: {path}: not a BENCH_*.json document (no rows)")
    rows = {}
    for i, row in enumerate(doc["rows"]):
        # A truncated or hand-edited snapshot may hold junk rows; losing
        # one row must not lose the whole comparison.
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            warn(f"{path}: skipping row {i} without a 'name': {row!r}")
            continue
        rows[row["name"]] = {
            k: v for k, v in row.items()
            if k != "name" and isinstance(v, (int, float))
        }
    return doc, rows


def is_latency(metric):
    return metric.endswith(LATENCY_SUFFIXES)


def speedup(metric, old, new):
    """new/old oriented so > 1 is an improvement; None when undefined."""
    if old == 0 or new == 0:
        return None
    return old / new if is_latency(metric) else new / old


def self_test():
    """In-process checks for the zero/missing-metric hardening. Exercises
    the exact shapes that used to crash: a row without a "name", a row
    that is not an object, and a baseline metric of 0."""
    good = {"name": "q1", "wall_ms": 2.0, "requests_per_sec": 100.0}
    doc = {
        "benchmark": "self-test",
        "rows": [
            good,
            {"wall_ms": 1.0},           # No name: must be skipped.
            "not-a-row",                # Not an object: must be skipped.
            {"name": "zero", "requests_per_sec": 0},
        ],
    }
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump(doc, f)
        path = f.name
    _, rows = load(path)
    assert set(rows) == {"q1", "zero"}, rows
    assert rows["q1"]["wall_ms"] == 2.0, rows

    # Zero on either side is "undefined", never a ZeroDivisionError.
    assert speedup("requests_per_sec", 0, 100) is None
    assert speedup("requests_per_sec", 100, 0) is None
    assert speedup("wall_ms", 0, 0) is None
    # Orientation: > 1 is an improvement for both metric kinds.
    assert speedup("wall_ms", 2.0, 1.0) == 2.0        # Faster: smaller ms.
    assert speedup("requests_per_sec", 50.0, 100.0) == 2.0

    # End-to-end: comparing the malformed doc against itself must not
    # crash and must exit 0 even with a tight threshold.
    sys.argv = ["bench_compare.py", path, path, "--threshold", "1.05"]
    main()
    print("bench_compare: self-test OK")


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json snapshots")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--metric", action="append", default=None,
                        help="only compare this metric (repeatable)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="exit 2 if any metric regresses by more than "
                             "this factor (e.g. 1.10 = 10%%)")
    args = parser.parse_args()

    old_doc, old_rows = load(args.old)
    new_doc, new_rows = load(args.new)
    print(f"benchmark: {old_doc.get('benchmark', '?')}  "
          f"storage: {old_doc.get('storage', '?')} -> "
          f"{new_doc.get('storage', '?')}")

    shared = [name for name in old_rows if name in new_rows]
    only_old = sorted(set(old_rows) - set(new_rows))
    only_new = sorted(set(new_rows) - set(old_rows))
    if not shared:
        sys.exit("error: the snapshots share no row names")

    width = max(len(name) for name in shared)
    regressions = []
    for name in shared:
        metrics = [m for m in old_rows[name]
                   if m in new_rows[name]
                   and (args.metric is None or m in args.metric)]
        for metric in metrics:
            old_value = old_rows[name][metric]
            new_value = new_rows[name][metric]
            factor = speedup(metric, old_value, new_value)
            if factor is None:
                warn(f"{name} {metric}: zero value "
                     f"({old_value} -> {new_value}), skipping ratio")
                rendered = "   n/a"
            else:
                rendered = f"{factor:5.2f}x"
                if args.threshold is not None and factor * args.threshold < 1:
                    regressions.append((name, metric, factor))
            print(f"  {name:<{width}}  {metric:<28} "
                  f"{old_value:>12.6g} -> {new_value:>12.6g}  {rendered}")

    for name in only_old:
        print(f"  {name:<{width}}  (removed)")
    for name in only_new:
        print(f"  {name:<{width}}  (new)")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed past "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, metric, factor in regressions:
            print(f"  {name} {metric}: {factor:.2f}x", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    if "--self-test" in sys.argv:
        self_test()
    else:
        main()
