#!/usr/bin/env python3
"""Diffs two BENCH_*.json snapshots row by row.

The bench binaries emit flat JSON documents ({"benchmark", "storage",
"rows": [{"name", <metric>: <number>, ...}, ...]}) precisely so successive
PRs can be compared machine-to-machine. This tool joins two snapshots on
row name and prints, per shared metric, old -> new and the speedup factor
(new/old, or old/new for latency-like metrics named *_ms / *_seconds,
so that > 1.00x always reads as "better").

Usage:
  tools/bench_compare.py OLD.json NEW.json [--metric METRIC] [--threshold X]

Exit status: 0 normally; 2 with --threshold when any compared metric
regressed by more than the given factor (e.g. --threshold 1.10 fails on a
>10% regression) — usable as a CI tripwire.
"""

import argparse
import json
import sys

# Metrics where *smaller* is better; their ratio column is inverted so
# "speedup > 1" uniformly means improvement.
LATENCY_SUFFIXES = ("_ms", "_millis", "_seconds", "_ns")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "rows" not in doc or not isinstance(doc["rows"], list):
        sys.exit(f"error: {path}: not a BENCH_*.json document (no rows)")
    rows = {}
    for row in doc["rows"]:
        rows[row["name"]] = {
            k: v for k, v in row.items()
            if k != "name" and isinstance(v, (int, float))
        }
    return doc, rows


def is_latency(metric):
    return metric.endswith(LATENCY_SUFFIXES)


def speedup(metric, old, new):
    """new/old oriented so > 1 is an improvement; None when undefined."""
    if old == 0 or new == 0:
        return None
    return old / new if is_latency(metric) else new / old


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json snapshots")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--metric", action="append", default=None,
                        help="only compare this metric (repeatable)")
    parser.add_argument("--threshold", type=float, default=None,
                        help="exit 2 if any metric regresses by more than "
                             "this factor (e.g. 1.10 = 10%%)")
    args = parser.parse_args()

    old_doc, old_rows = load(args.old)
    new_doc, new_rows = load(args.new)
    print(f"benchmark: {old_doc.get('benchmark', '?')}  "
          f"storage: {old_doc.get('storage', '?')} -> "
          f"{new_doc.get('storage', '?')}")

    shared = [name for name in old_rows if name in new_rows]
    only_old = sorted(set(old_rows) - set(new_rows))
    only_new = sorted(set(new_rows) - set(old_rows))
    if not shared:
        sys.exit("error: the snapshots share no row names")

    width = max(len(name) for name in shared)
    regressions = []
    for name in shared:
        metrics = [m for m in old_rows[name]
                   if m in new_rows[name]
                   and (args.metric is None or m in args.metric)]
        for metric in metrics:
            old_value = old_rows[name][metric]
            new_value = new_rows[name][metric]
            factor = speedup(metric, old_value, new_value)
            if factor is None:
                rendered = "   n/a"
            else:
                rendered = f"{factor:5.2f}x"
                if args.threshold is not None and factor * args.threshold < 1:
                    regressions.append((name, metric, factor))
            print(f"  {name:<{width}}  {metric:<28} "
                  f"{old_value:>12.6g} -> {new_value:>12.6g}  {rendered}")

    for name in only_old:
        print(f"  {name:<{width}}  (removed)")
    for name in only_new:
        print(f"  {name:<{width}}  (new)")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed past "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, metric, factor in regressions:
            print(f"  {name} {metric}: {factor:.2f}x", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
